package exper

import (
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/datatype"
	"repro/internal/mpi"
	"repro/internal/simtime"
	"repro/internal/tuner"
)

// The adversarial tuner sweep: a machine where the static Section 6
// thresholds pick the wrong scheme, so only measurement can find the right
// one. The "machine" has pathologically expensive scatter/gather entries
// (SGEPost/NICSGECost far above the calibrated testbed — think a NIC without
// real SGE offload) and a mis-tuned AutoGatherThreshold, so static Auto
// routes a fine-grained vector onto RWG-UP, whose per-run SGE cost is ruinous
// there, while the staged pipeline is an order of magnitude faster. The
// tuner, seeded with the (wrong) default-model priors, must discover the
// crossover from latency feedback alone.
//
// All timings are virtual (sim backend), so the sweep is deterministic and
// BENCH_tuner.json regenerates byte-identically — which is what lets the
// Makefile guard diff it in CI fashion.

// tunerWorkloadType is a 16 KB vector of 256 runs x 64 bytes: runs long
// enough to clear the mis-tuned gather threshold, numerous enough to make
// per-run SGE costs dominate.
func tunerWorkloadType() *datatype.Type {
	return datatype.Must(datatype.TypeVector(256, 16, 64, datatype.Int32))
}

const tunerWorkloadDesc = "vector(256 x 16 of 64, MPI_INT), 16 KB payload, 64 B runs"

// adversarialTunerConfig builds the mis-modeled machine. sel is the adaptive
// selector for the Auto runs (nil for fixed schemes and static Auto).
func adversarialTunerConfig(scheme core.Scheme, sel core.SchemeSelector) mpi.Config {
	return worldConfig(2, scheme, expMem2, func(c *mpi.Config) {
		c.Model.SGEPost = 4 * simtime.Microsecond
		c.Model.NICSGECost = 3 * simtime.Microsecond
		c.Core.AutoGatherThreshold = 32
		c.Selector = sel
	})
}

// tunerRunLatencies sends msgs rendezvous messages rank0 -> rank1, each
// acknowledged, and returns the per-message virtual round time in
// microseconds plus the world (for counter inspection).
func tunerRunLatencies(cfg mpi.Config, dt *datatype.Type, msgs int) ([]float64, *mpi.World, error) {
	w, err := mpi.NewWorld(cfg)
	if err != nil {
		return nil, nil, err
	}
	lats := make([]float64, 0, msgs)
	err = w.Run(func(p *mpi.Proc) error {
		buf := allocFor(p, dt, 1)
		ack := p.Mem().MustAlloc(8)
		if p.Rank() == 0 {
			fillBuf(p, buf, dt, 1, 1)
			for i := 0; i < msgs; i++ {
				t0 := p.Now()
				if err := p.Send(buf, 1, dt, 1, 0); err != nil {
					return err
				}
				if _, err := p.Recv(ack, 1, datatype.Byte, 1, 1); err != nil {
					return err
				}
				lats = append(lats, p.Now().Sub(t0).Micros())
			}
			return nil
		}
		for i := 0; i < msgs; i++ {
			if _, err := p.Recv(buf, 1, dt, 0, 0); err != nil {
				return err
			}
			if err := p.Send(ack, 1, datatype.Byte, 0, 1); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return lats, w, nil
}

func meanOf(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	var s float64
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

// lastQuartile returns the final quarter of the series.
func lastQuartile(v []float64) []float64 {
	return v[len(v)-len(v)/4:]
}

// TunerRow is one mode's measurement in the adversarial sweep.
type TunerRow struct {
	Mode          string  `json:"mode"` // "fixed", "static-auto", "tuned", "warm-start"
	Scheme        string  `json:"scheme,omitempty"`
	Msgs          int     `json:"msgs"`
	MeanUS        float64 `json:"mean_us"`        // virtual round time per message
	LastQMeanUS   float64 `json:"last_q_mean_us"` // mean over the final quartile
	Explorations  int64   `json:"explorations,omitempty"`
	Exploitations int64   `json:"exploitations,omitempty"`
	RegretMS      float64 `json:"regret_ms,omitempty"` // summed regret proxy
}

// TunerReport is the BENCH_tuner.json document.
type TunerReport struct {
	Benchmark        string     `json:"benchmark"`
	Workload         string     `json:"workload"`
	Machine          string     `json:"machine"`
	Msgs             int        `json:"msgs"`
	Rows             []TunerRow `json:"rows"`
	BestFixed        string     `json:"best_fixed"`
	BestFixedUS      float64    `json:"best_fixed_us"`
	StaticVsBest     float64    `json:"static_vs_best"`       // static-auto mean / best fixed mean
	TunedLastQVsBest float64    `json:"tuned_last_q_vs_best"` // tuned last-quartile mean / best fixed mean
	WarmVsBest       float64    `json:"warm_vs_best"`         // warm-start mean / best fixed mean
}

// TunerSweep runs the adversarial sweep: every fixed scheme, static Auto,
// adaptive Auto (cold tuner), and warm-started Auto replaying the cold run's
// exported table with exploration off. It returns the report and the
// exported tuning table (for dtbench -tune-out).
func TunerSweep(msgs int) (*TunerReport, []byte, error) {
	if msgs <= 0 {
		msgs = 160
	}
	dt := tunerWorkloadType()
	rep := &TunerReport{
		Benchmark: "adaptive-tuner-adversarial",
		Workload:  tunerWorkloadDesc,
		Machine:   "SGEPost=4us NICSGECost=3us (crippled scatter/gather), AutoGatherThreshold=32 (mis-tuned)",
		Msgs:      msgs,
	}

	fixed := []core.Scheme{
		core.SchemeGeneric, core.SchemeBCSPUP, core.SchemeRWGUP,
		core.SchemePRRS, core.SchemeMultiW,
	}
	for _, s := range fixed {
		lats, _, err := tunerRunLatencies(adversarialTunerConfig(s, nil), dt, msgs)
		if err != nil {
			return nil, nil, fmt.Errorf("exper: fixed %v: %w", s, err)
		}
		row := TunerRow{
			Mode: "fixed", Scheme: s.String(), Msgs: msgs,
			MeanUS: meanOf(lats), LastQMeanUS: meanOf(lastQuartile(lats)),
		}
		rep.Rows = append(rep.Rows, row)
		if rep.BestFixed == "" || row.MeanUS < rep.BestFixedUS {
			rep.BestFixed, rep.BestFixedUS = row.Scheme, row.MeanUS
		}
	}

	staticLats, _, err := tunerRunLatencies(adversarialTunerConfig(core.SchemeAuto, nil), dt, msgs)
	if err != nil {
		return nil, nil, fmt.Errorf("exper: static auto: %w", err)
	}
	rep.Rows = append(rep.Rows, TunerRow{
		Mode: "static-auto", Msgs: msgs,
		MeanUS: meanOf(staticLats), LastQMeanUS: meanOf(lastQuartile(staticLats)),
	})

	// Cold adaptive run: priors come from the *default* model — the tuner
	// believes gather is cheap, exactly like the static thresholds do, and
	// must learn the truth from feedback. The table is tagged with the
	// backend it is measured on, so it can never warm-start another.
	tcfg := tuner.DefaultConfig()
	tcfg.Backend = mpi.BackendSim
	tu := tuner.New(tcfg)
	tunedLats, tw, err := tunerRunLatencies(adversarialTunerConfig(core.SchemeAuto, tu), dt, msgs)
	if err != nil {
		return nil, nil, fmt.Errorf("exper: tuned auto: %w", err)
	}
	ctr := tw.Endpoint(1).Counters().Snapshot()
	rep.Rows = append(rep.Rows, TunerRow{
		Mode: "tuned", Msgs: msgs,
		MeanUS: meanOf(tunedLats), LastQMeanUS: meanOf(lastQuartile(tunedLats)),
		Explorations:  ctr.TunerExplorations,
		Exploitations: ctr.TunerExploitations,
		RegretMS:      float64(ctr.TunerRegretNs) / 1e6,
	})

	table, err := tu.ExportJSON()
	if err != nil {
		return nil, nil, err
	}

	// Warm start: a fresh tuner imports the calibration table and runs pure
	// exploitation — the calibrate-then-warm-start workflow.
	wcfg := tuner.DefaultConfig()
	wcfg.Explore = false
	wcfg.Backend = mpi.BackendSim
	wt := tuner.New(wcfg)
	if err := wt.ImportJSON(table); err != nil {
		return nil, nil, err
	}
	warmLats, ww, err := tunerRunLatencies(adversarialTunerConfig(core.SchemeAuto, wt), dt, msgs)
	if err != nil {
		return nil, nil, fmt.Errorf("exper: warm auto: %w", err)
	}
	wctr := ww.Endpoint(1).Counters().Snapshot()
	rep.Rows = append(rep.Rows, TunerRow{
		Mode: "warm-start", Msgs: msgs,
		MeanUS: meanOf(warmLats), LastQMeanUS: meanOf(lastQuartile(warmLats)),
		Explorations:  wctr.TunerExplorations,
		Exploitations: wctr.TunerExploitations,
		RegretMS:      float64(wctr.TunerRegretNs) / 1e6,
	})

	if rep.BestFixedUS > 0 {
		rep.StaticVsBest = meanOf(staticLats) / rep.BestFixedUS
		rep.TunedLastQVsBest = meanOf(lastQuartile(tunedLats)) / rep.BestFixedUS
		rep.WarmVsBest = meanOf(warmLats) / rep.BestFixedUS
	}
	return rep, table, nil
}

// TunerWarmRun replays the adversarial workload with a tuner warm-started
// from an exported table (exploration off) — the dtbench -tune-in path. It
// returns the warm row so callers can compare against a calibration report.
func TunerWarmRun(table []byte, msgs int) (*TunerRow, error) {
	if msgs <= 0 {
		msgs = 160
	}
	cfg := tuner.DefaultConfig()
	cfg.Explore = false
	cfg.Backend = mpi.BackendSim
	wt := tuner.New(cfg)
	if err := wt.ImportJSON(table); err != nil {
		return nil, err
	}
	lats, w, err := tunerRunLatencies(adversarialTunerConfig(core.SchemeAuto, wt), tunerWorkloadType(), msgs)
	if err != nil {
		return nil, err
	}
	ctr := w.Endpoint(1).Counters().Snapshot()
	return &TunerRow{
		Mode: "warm-start", Msgs: msgs,
		MeanUS: meanOf(lats), LastQMeanUS: meanOf(lastQuartile(lats)),
		Explorations:  ctr.TunerExplorations,
		Exploitations: ctr.TunerExploitations,
		RegretMS:      float64(ctr.TunerRegretNs) / 1e6,
	}, nil
}

// TunerJSON renders the report as the BENCH_tuner.json document.
func TunerJSON(rep *TunerReport) ([]byte, error) {
	return json.MarshalIndent(rep, "", "  ")
}

// TunerTable renders the report as an aligned text table.
func TunerTable(rep *TunerReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# adaptive tuner, adversarial machine (%s)\n", rep.Machine)
	fmt.Fprintf(&b, "# workload: %s, %d messages\n", rep.Workload, rep.Msgs)
	fmt.Fprintf(&b, "%-12s %-10s %12s %14s %9s %9s %10s\n",
		"mode", "scheme", "mean us", "last-q us", "explore", "exploit", "regret ms")
	for _, r := range rep.Rows {
		scheme := r.Scheme
		if scheme == "" {
			scheme = "-"
		}
		fmt.Fprintf(&b, "%-12s %-10s %12.2f %14.2f %9d %9d %10.2f\n",
			r.Mode, scheme, r.MeanUS, r.LastQMeanUS, r.Explorations, r.Exploitations, r.RegretMS)
	}
	fmt.Fprintf(&b, "best fixed %s at %.2f us; static auto %.2fx, tuned last quartile %.2fx, warm start %.2fx\n",
		rep.BestFixed, rep.BestFixedUS, rep.StaticVsBest, rep.TunedLastQVsBest, rep.WarmVsBest)
	return b.String()
}
