package exper

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/mpi"
)

func TestResultTable(t *testing.T) {
	r := &Result{
		Name: "t", Title: "demo", XLabel: "x", YLabel: "y",
		SeriesOrder: []string{"a", "b"},
	}
	r.Add(1, map[string]float64{"a": 1.5, "b": 1000})
	r.Add(2, map[string]float64{"a": 12.34})
	out := r.Table()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "1.50") {
		t.Fatalf("table output:\n%s", out)
	}
	if !strings.Contains(out, "-") {
		t.Fatal("missing value not rendered as -")
	}
}

func TestImprovementOf(t *testing.T) {
	r := &Result{SeriesOrder: []string{"base", "fast"}}
	r.Add(1, map[string]float64{"base": 100, "fast": 50})
	r.Add(2, map[string]float64{"base": 90, "fast": 30})
	imp := r.ImprovementOf("fast", "base", true) // latency: lower better
	if imp.Min != 2.0 || imp.Max != 3.0 || imp.N != 2 {
		t.Fatalf("imp = %+v", imp)
	}
	// Bandwidth direction.
	r2 := &Result{}
	r2.Add(1, map[string]float64{"base": 100, "fast": 150})
	imp2 := r2.ImprovementOf("fast", "base", false)
	if imp2.Avg != 1.5 {
		t.Fatalf("imp2 = %+v", imp2)
	}
}

func TestCrossover(t *testing.T) {
	r := &Result{}
	r.Add(1, map[string]float64{"a": 10, "b": 5})
	r.Add(4, map[string]float64{"a": 10, "b": 20})
	r.Add(2, map[string]float64{"a": 10, "b": 8})
	if x := r.Crossover("b", "a", false); x != 4 { // b beats a (higher) first at 4
		t.Fatalf("crossover = %d", x)
	}
	if x := r.Crossover("b", "a", true); x != 1 { // lower-better: at 1
		t.Fatalf("crossover = %d", x)
	}
	never := &Result{}
	never.Add(1, map[string]float64{"a": 1, "b": 5})
	never.Add(2, map[string]float64{"a": 2, "b": 5})
	if x := never.Crossover("a", "b", false); x != -1 {
		t.Fatalf("never-crossover = %d", x)
	}
}

func TestStructTypeShape(t *testing.T) {
	st := StructType(8)
	// Blocks 1,2,4,8 ints with one-int gaps.
	if st.Blocks() != 4 {
		t.Fatalf("blocks = %d", st.Blocks())
	}
	if st.Size() != (1+2+4+8)*4 {
		t.Fatalf("size = %d", st.Size())
	}
}

func TestVectorTypeShape(t *testing.T) {
	v := VectorType(3)
	if v.Blocks() != 128 || v.Size() != 128*3*4 {
		t.Fatalf("blocks=%d size=%d", v.Blocks(), v.Size())
	}
	if VectorBytes(3) != v.Size() {
		t.Fatal("VectorBytes disagrees with type size")
	}
}

func testCfg(scheme core.Scheme, mut func(*mpi.Config)) mpi.Config {
	return worldConfig(2, scheme, 64<<20, func(c *mpi.Config) {
		c.Core.PoolSize = 4 << 20
		if mut != nil {
			mut(c)
		}
	})
}

// The shape-regression assertions: the qualitative results the paper reports
// must hold in this reproduction. These guard the cost model and protocol
// implementations against regressions that keep tests green but break the
// evaluation story.
func TestPaperShapeLatency(t *testing.T) {
	x := 512
	dt := VectorType(x)
	lat := func(s core.Scheme) float64 {
		v, err := PingPongLatency(testCfg(s, nil), dt, 1, 1, 2)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	generic := lat(core.SchemeGeneric)
	bcspup := lat(core.SchemeBCSPUP)
	rwgup := lat(core.SchemeRWGUP)
	multiw := lat(core.SchemeMultiW)
	// Ordering at large messages: Generic slowest, Multi-W fastest.
	if !(generic > bcspup && bcspup > rwgup && rwgup > multiw) {
		t.Fatalf("large-message ordering broken: G=%.0f B=%.0f R=%.0f M=%.0f",
			generic, bcspup, rwgup, multiw)
	}
	if generic/bcspup < 1.2 {
		t.Fatalf("BC-SPUP improvement too small: %.2f", generic/bcspup)
	}
	if generic/multiw < 2.0 {
		t.Fatalf("Multi-W improvement too small: %.2f", generic/multiw)
	}
}

func TestPaperShapeMultiWDegradesAtSmallBlocks(t *testing.T) {
	dt := VectorType(16) // 64-byte blocks
	lat := func(s core.Scheme) float64 {
		v, err := PingPongLatency(testCfg(s, nil), dt, 1, 1, 2)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	if m, g := lat(core.SchemeMultiW), lat(core.SchemeGeneric); m <= g {
		t.Fatalf("Multi-W (%0.f) should degrade below Generic (%0.f) at tiny blocks", m, g)
	}
}

func TestPaperShapeManualVsDatatype(t *testing.T) {
	dt := VectorType(256)
	cfg := testCfg(core.SchemeGeneric, nil)
	man, err := ManualLatency(cfg, dt, 1, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := PingPongLatency(cfg, dt, 1, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !(man < gen) {
		t.Fatalf("Manual (%.0f) should slightly beat Datatype (%.0f)", man, gen)
	}
	if gen/man > 1.5 {
		t.Fatalf("Manual advantage too large: %.2f (datatype processing overhead only)", gen/man)
	}
}

func TestPaperShapeDTRegSlower(t *testing.T) {
	dt := VectorType(128)
	base, err := PingPongLatency(testCfg(core.SchemeGeneric, nil), dt, 1, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	reg, err := PingPongLatency(testCfg(core.SchemeGeneric, func(c *mpi.Config) {
		c.Core.RegCache = false
	}), dt, 1, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if reg <= base*1.1 {
		t.Fatalf("DT+reg (%.0f) should be much slower than Datatype (%.0f)", reg, base)
	}
}

func TestPaperShapeSegmentUnpack(t *testing.T) {
	dt := VectorType(1024)
	on, err := Bandwidth(testCfg(core.SchemeRWGUP, nil), dt, 1, 20)
	if err != nil {
		t.Fatal(err)
	}
	off, err := Bandwidth(testCfg(core.SchemeRWGUP, func(c *mpi.Config) {
		c.Core.SegmentUnpack = false
	}), dt, 1, 20)
	if err != nil {
		t.Fatal(err)
	}
	if on/off < 1.1 {
		t.Fatalf("segment unpack should help: on=%.0f off=%.0f", on, off)
	}
}

func TestPaperShapeListPost(t *testing.T) {
	dt := VectorType(64)
	list, err := Bandwidth(testCfg(core.SchemeMultiW, nil), dt, 1, 20)
	if err != nil {
		t.Fatal(err)
	}
	single, err := Bandwidth(testCfg(core.SchemeMultiW, func(c *mpi.Config) {
		c.Core.ListPost = false
	}), dt, 1, 20)
	if err != nil {
		t.Fatal(err)
	}
	if list/single < 1.2 {
		t.Fatalf("list post should help at small blocks: list=%.0f single=%.0f", list, single)
	}
}

func TestPaperShapeWorstCase(t *testing.T) {
	worst := func(c *mpi.Config) {
		c.Core.RegCache = false
		c.Core.UsePools = false
	}
	latency := func(s core.Scheme, x int) float64 {
		v, err := PingPongLatency(testCfg(s, worst), VectorType(x), 1, 1, 2)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	// Small blocks: whole-array registration makes Multi-W much worse than
	// Generic; large blocks: reduced copies win despite registration.
	if m, g := latency(core.SchemeMultiW, 64), latency(core.SchemeGeneric, 64); m <= g {
		t.Fatalf("worst case small: Multi-W (%.0f) should lose to Generic (%.0f)", m, g)
	}
	if m, g := latency(core.SchemeMultiW, 2048), latency(core.SchemeGeneric, 2048); m >= g {
		t.Fatalf("worst case large: Multi-W (%.0f) should beat Generic (%.0f)", m, g)
	}
	// BC-SPUP must never lose to Generic (same registration costs, overlap).
	if b, g := latency(core.SchemeBCSPUP, 256), latency(core.SchemeGeneric, 256); b > g {
		t.Fatalf("worst case: BC-SPUP (%.0f) should not lose to Generic (%.0f)", b, g)
	}
}

func TestAblationOGRDominance(t *testing.T) {
	r := AblationOGR()
	for _, p := range r.Points {
		ogr := p.Series["OGR"]
		if ogr > p.Series["per-block"]+1e-9 || ogr > p.Series["cover-all"]+1e-9 {
			t.Fatalf("OGR cost %v exceeds a fixed strategy at x=%d: %+v", ogr, p.X, p.Series)
		}
	}
}

// The scheme ordering must be robust to the copy/link bandwidth ratio.
func TestSensitivityOrderingRobust(t *testing.T) {
	dt := VectorType(2048)
	for _, copyGBps := range []float64{0.5, 1.5} {
		mk := func(s core.Scheme) float64 {
			cfg := testCfg(s, func(c *mpi.Config) { c.Model.CopyGBps = copyGBps })
			v, err := PingPongLatency(cfg, dt, 1, 1, 2)
			if err != nil {
				t.Fatal(err)
			}
			return v
		}
		g, b, m := mk(core.SchemeGeneric), mk(core.SchemeBCSPUP), mk(core.SchemeMultiW)
		if !(g > b && b > m) {
			t.Fatalf("copy=%.1f GB/s: ordering broken G=%.0f B=%.0f M=%.0f", copyGBps, g, b, m)
		}
	}
}

// With the buffers-not-reused hint, Auto must avoid the copy-reduced schemes
// (registration would not amortize) and fall back to the pack pipeline.
func TestAutoHonorsBufferReuseHint(t *testing.T) {
	dt := VectorType(512) // big blocks: Auto would normally pick Multi-W
	cfg := testCfg(core.SchemeAuto, func(c *mpi.Config) {
		c.Core.BuffersReused = false
	})
	w, err := mpi.NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(p *mpi.Proc) error {
		buf := allocFor(p, dt, 1)
		if p.Rank() == 0 {
			fillBuf(p, buf, dt, 1, 1)
			return p.Send(buf, 1, dt, 1, 0)
		}
		_, err := p.Recv(buf, 1, dt, 0, 0)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	// Pack-based => payload was copied on both sides.
	if w.Endpoint(0).Counters().BytesPacked == 0 || w.Endpoint(1).Counters().BytesUnpacked == 0 {
		t.Fatal("Auto ignored BuffersReused=false and went copy-reduced")
	}
}
