package exper

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/datatype"
	"repro/internal/mem"
	"repro/internal/mpi"
	"repro/internal/pack"
	"repro/internal/pario"
)

// The paper's vector workload (Sections 3.2 and 8.2): x columns of a
// 128 x 4096 32-bit integer array.
const (
	vecRows = 128
	vecCols = 4096
)

// VectorType returns MPI_Type_vector(128, x, 4096, MPI_INT).
func VectorType(x int) *datatype.Type {
	return datatype.Must(datatype.TypeVector(vecRows, x, vecCols, datatype.Int32))
}

// VectorBytes is the payload size of the x-column vector message.
func VectorBytes(x int) int64 { return int64(vecRows) * int64(x) * 4 }

// StructType returns the paper's Figure 10 struct: blocks of 1, 2, 4, ...,
// lastInts integers, each followed by a one-integer gap.
func StructType(lastInts int) *datatype.Type {
	var lens []int
	var displs []int64
	var types []*datatype.Type
	pos := int64(0)
	for b := 1; b <= lastInts; b *= 2 {
		lens = append(lens, b)
		displs = append(displs, pos)
		types = append(types, datatype.Int32)
		pos += int64(b)*4 + 4 // the gap equals the first block's size (one int)
	}
	return datatype.Must(datatype.TypeStruct(lens, displs, types))
}

// worldConfig builds an experiment cluster configuration.
func worldConfig(ranks int, scheme core.Scheme, memBytes int64, mut func(*mpi.Config)) mpi.Config {
	cfg := mpi.DefaultConfig()
	cfg.Ranks = ranks
	cfg.MemBytes = memBytes
	cfg.Core.Scheme = scheme
	if mut != nil {
		mut(&cfg)
	}
	return cfg
}

func allocFor(p *mpi.Proc, dt *datatype.Type, count int) mem.Addr {
	span := dt.TrueExtent() + int64(count-1)*dt.Extent()
	a := p.Mem().MustAlloc(span)
	return mem.Addr(int64(a) - dt.TrueLB())
}

func fillBuf(p *mpi.Proc, base mem.Addr, dt *datatype.Type, count int, seed byte) {
	data := make([]byte, dt.Size()*int64(count))
	for i := range data {
		data[i] = seed ^ byte(i*17+5)
	}
	u := pack.NewUnpacker(p.Mem(), base, dt, count)
	if n, _ := u.UnpackFrom(data); n != int64(len(data)) {
		panic("fillBuf short")
	}
}

// PingPongLatency measures the average one-way latency (microseconds) of a
// (dt, count) ping-pong between two ranks.
func PingPongLatency(cfg mpi.Config, dt *datatype.Type, count, warmup, iters int) (float64, error) {
	cfg.Ranks = 2
	w, err := mpi.NewWorld(cfg)
	if err != nil {
		return 0, err
	}
	var oneWay float64
	err = w.Run(func(p *mpi.Proc) error {
		buf := allocFor(p, dt, count)
		if p.Rank() == 0 {
			fillBuf(p, buf, dt, count, 1)
			for i := 0; i < warmup; i++ {
				if err := p.Send(buf, count, dt, 1, 0); err != nil {
					return err
				}
				if _, err := p.Recv(buf, count, dt, 1, 0); err != nil {
					return err
				}
			}
			start := p.Now()
			for i := 0; i < iters; i++ {
				if err := p.Send(buf, count, dt, 1, 0); err != nil {
					return err
				}
				if _, err := p.Recv(buf, count, dt, 1, 0); err != nil {
					return err
				}
			}
			total := p.Now().Sub(start)
			oneWay = total.Micros() / float64(2*iters)
		} else {
			for i := 0; i < warmup+iters; i++ {
				if _, err := p.Recv(buf, count, dt, 0, 0); err != nil {
					return err
				}
				if err := p.Send(buf, count, dt, 0, 0); err != nil {
					return err
				}
			}
		}
		return nil
	})
	return oneWay, err
}

// Bandwidth measures the achieved bandwidth (MB/s, MB = 2^20 bytes, as the
// paper defines it) of a window of back-to-back (dt, count) messages
// followed by one reply — the paper's bandwidth test (Section 8.2).
func Bandwidth(cfg mpi.Config, dt *datatype.Type, count, window int) (float64, error) {
	cfg.Ranks = 2
	w, err := mpi.NewWorld(cfg)
	if err != nil {
		return 0, err
	}
	size := dt.Size() * int64(count)
	var mbps float64
	err = w.Run(func(p *mpi.Proc) error {
		buf := allocFor(p, dt, count)
		ack := p.Mem().MustAlloc(8)
		if p.Rank() == 0 {
			fillBuf(p, buf, dt, count, 2)
			// Warmup round trip.
			if err := p.Send(buf, count, dt, 1, 1); err != nil {
				return err
			}
			if _, err := p.Recv(ack, 1, datatype.Byte, 1, 2); err != nil {
				return err
			}
			start := p.Now()
			// Blocking sends, as the paper's streaming test pushes them:
			// message k+1 starts once k's send completes locally.
			for i := 0; i < window; i++ {
				if err := p.Send(buf, count, dt, 1, 1); err != nil {
					return err
				}
			}
			if _, err := p.Recv(ack, 1, datatype.Byte, 1, 2); err != nil {
				return err
			}
			elapsed := p.Now().Sub(start)
			mbps = float64(size) * float64(window) / (1 << 20) / elapsed.Seconds()
		} else {
			if _, err := p.Recv(buf, count, dt, 0, 1); err != nil {
				return err
			}
			if err := p.Send(ack, 1, datatype.Byte, 0, 2); err != nil {
				return err
			}
			reqs := make([]*core.Request, 0, window)
			for i := 0; i < window; i++ {
				reqs = append(reqs, p.Irecv(buf, count, dt, 0, 1))
			}
			if err := p.Wait(reqs...); err != nil {
				return err
			}
			if err := p.Send(ack, 1, datatype.Byte, 0, 2); err != nil {
				return err
			}
		}
		return nil
	})
	return mbps, err
}

// ManualLatency measures the paper's "Manual" scheme: the user packs into a
// contiguous staging buffer, sends contiguously, and the receiver unpacks by
// hand. User pack cost is pure copy cost (no datatype-processing overhead).
func ManualLatency(cfg mpi.Config, dt *datatype.Type, count, warmup, iters int) (float64, error) {
	cfg.Ranks = 2
	w, err := mpi.NewWorld(cfg)
	if err != nil {
		return 0, err
	}
	size := dt.Size() * int64(count)
	var oneWay float64
	err = w.Run(func(p *mpi.Proc) error {
		user := allocFor(p, dt, count)
		stage := p.Mem().MustAlloc(size)
		model := cfg.Model
		manualCopy := func(packIt bool) {
			var n int64
			var runs int
			if packIt {
				pk := pack.NewPacker(p.Mem(), user, dt, count)
				n, runs = pk.PackTo(p.Mem().Bytes(stage, size))
			} else {
				u := pack.NewUnpacker(p.Mem(), user, dt, count)
				n, runs = u.UnpackFrom(p.Mem().Bytes(stage, size))
			}
			if n != size {
				panic("manual copy short")
			}
			p.Compute(model.CopyTime(n, runs))
		}
		round := func(send bool) error {
			if send {
				manualCopy(true)
				if err := p.Send(stage, int(size), datatype.Byte, 1-p.Rank(), 0); err != nil {
					return err
				}
				return nil
			}
			if _, err := p.Recv(stage, int(size), datatype.Byte, 1-p.Rank(), 0); err != nil {
				return err
			}
			manualCopy(false)
			return nil
		}
		if p.Rank() == 0 {
			fillBuf(p, user, dt, count, 3)
			for i := 0; i < warmup; i++ {
				if err := round(true); err != nil {
					return err
				}
				if err := round(false); err != nil {
					return err
				}
			}
			start := p.Now()
			for i := 0; i < iters; i++ {
				if err := round(true); err != nil {
					return err
				}
				if err := round(false); err != nil {
					return err
				}
			}
			oneWay = p.Now().Sub(start).Micros() / float64(2*iters)
		} else {
			for i := 0; i < warmup+iters; i++ {
				if err := round(false); err != nil {
					return err
				}
				if err := round(true); err != nil {
					return err
				}
			}
		}
		return nil
	})
	return oneWay, err
}

// MultipleLatency measures the paper's "Multiple" scheme: one MPI call per
// contiguous block of the datatype.
func MultipleLatency(cfg mpi.Config, dt *datatype.Type, count, warmup, iters int) (float64, error) {
	cfg.Ranks = 2
	w, err := mpi.NewWorld(cfg)
	if err != nil {
		return 0, err
	}
	blocks, trunc := datatype.Flatten(dt, count, 0)
	if trunc {
		return 0, fmt.Errorf("exper: too many blocks for Multiple scheme")
	}
	var oneWay float64
	err = w.Run(func(p *mpi.Proc) error {
		user := allocFor(p, dt, count)
		peer := 1 - p.Rank()
		sendAll := func() error {
			reqs := make([]*core.Request, 0, len(blocks))
			for _, b := range blocks {
				addr := mem.Addr(int64(user) + b.Off)
				reqs = append(reqs, p.Isend(addr, int(b.Len), datatype.Byte, peer, 0))
			}
			return p.Wait(reqs...)
		}
		recvAll := func() error {
			reqs := make([]*core.Request, 0, len(blocks))
			for _, b := range blocks {
				addr := mem.Addr(int64(user) + b.Off)
				reqs = append(reqs, p.Irecv(addr, int(b.Len), datatype.Byte, peer, 0))
			}
			return p.Wait(reqs...)
		}
		if p.Rank() == 0 {
			fillBuf(p, user, dt, count, 4)
			for i := 0; i < warmup; i++ {
				if err := sendAll(); err != nil {
					return err
				}
				if err := recvAll(); err != nil {
					return err
				}
			}
			start := p.Now()
			for i := 0; i < iters; i++ {
				if err := sendAll(); err != nil {
					return err
				}
				if err := recvAll(); err != nil {
					return err
				}
			}
			oneWay = p.Now().Sub(start).Micros() / float64(2*iters)
		} else {
			for i := 0; i < warmup+iters; i++ {
				if err := recvAll(); err != nil {
					return err
				}
				if err := sendAll(); err != nil {
					return err
				}
			}
		}
		return nil
	})
	return oneWay, err
}

// AlltoallTime measures the average completion time (microseconds) of an
// MPI_Alltoall with (dt, count) blocks across the world's ranks.
func AlltoallTime(cfg mpi.Config, dt *datatype.Type, count, warmup, iters int) (float64, error) {
	w, err := mpi.NewWorld(cfg)
	if err != nil {
		return 0, err
	}
	var avg float64
	err = w.Run(func(p *mpi.Proc) error {
		n := p.Size()
		sbuf := allocFor(p, dt, count*n)
		rbuf := allocFor(p, dt, count*n)
		fillBuf(p, sbuf, dt, count*n, byte(p.Rank()+1))
		for i := 0; i < warmup; i++ {
			if err := p.Alltoall(sbuf, count, dt, rbuf, count, dt); err != nil {
				return err
			}
		}
		if err := p.Barrier(); err != nil {
			return err
		}
		start := p.Now()
		for i := 0; i < iters; i++ {
			if err := p.Alltoall(sbuf, count, dt, rbuf, count, dt); err != nil {
				return err
			}
		}
		if err := p.Barrier(); err != nil {
			return err
		}
		if p.Rank() == 0 {
			avg = p.Now().Sub(start).Micros() / float64(iters)
		}
		return nil
	})
	return avg, err
}

// mustSim converts (value, error) to value, panicking on error; experiment
// drivers use it because a failure is a bug in the simulation, not a
// recoverable condition.
func mustSim(v float64, err error) float64 {
	if err != nil {
		panic(err)
	}
	return v
}

// PutLatency measures the average completion time of a one-sided Put of one
// (dt) message into a window laid out with the same datatype, fenced each
// iteration (both fences' synchronization included, halved like ping-pong).
func PutLatency(cfg mpi.Config, dt *datatype.Type, warmup, iters int) (float64, error) {
	cfg.Ranks = 2
	w, err := mpi.NewWorld(cfg)
	if err != nil {
		return 0, err
	}
	var us float64
	err = w.Run(func(p *mpi.Proc) error {
		span := dt.TrueExtent()
		winBuf := p.Mem().MustAlloc(span)
		win, err := p.World().WinCreate(winBuf, span)
		if err != nil {
			return err
		}
		src := allocFor(p, dt, 1)
		if p.Rank() == 0 {
			fillBuf(p, src, dt, 1, 5)
		}
		doPut := func() error {
			if p.Rank() == 0 {
				if err := win.Put(src, 1, dt, 1, -dt.TrueLB(), 1, dt); err != nil {
					return err
				}
			}
			return win.Fence()
		}
		for i := 0; i < warmup; i++ {
			if err := doPut(); err != nil {
				return err
			}
		}
		start := p.Now()
		for i := 0; i < iters; i++ {
			if err := doPut(); err != nil {
				return err
			}
		}
		if p.Rank() == 0 {
			us = p.Now().Sub(start).Micros() / float64(iters)
		}
		return win.Free()
	})
	return us, err
}

// ParIOTime measures the average time for a client to write and read back
// one (dt) view of a server-hosted file in the given pario mode.
func ParIOTime(cfg mpi.Config, dt *datatype.Type, mode pario.Mode, warmup, iters int) (float64, error) {
	cfg.Ranks = 2
	w, err := mpi.NewWorld(cfg)
	if err != nil {
		return 0, err
	}
	var us float64
	err = w.Run(func(p *mpi.Proc) error {
		f, err := pario.Open(p.World(), 0, dt.Size()+4096, mode)
		if err != nil {
			return err
		}
		if p.Rank() == 0 {
			return f.Serve()
		}
		buf := allocFor(p, dt, 1)
		fillBuf(p, buf, dt, 1, 9)
		round := func() error {
			if err := f.WriteAt(0, buf, 1, dt); err != nil {
				return err
			}
			return f.ReadAt(0, buf, 1, dt)
		}
		for i := 0; i < warmup; i++ {
			if err := round(); err != nil {
				return err
			}
		}
		start := p.Now()
		for i := 0; i < iters; i++ {
			if err := round(); err != nil {
				return err
			}
		}
		us = p.Now().Sub(start).Micros() / float64(iters)
		return f.Close()
	})
	return us, err
}

// CountersReport runs one 256 KB vector transfer under each scheme and
// formats the per-rank operation counters — the observable anatomy of each
// scheme (copies, registrations, descriptors, control traffic).
func CountersReport() (string, error) {
	var out strings.Builder
	dt := VectorType(512)
	for _, s := range []struct {
		name   string
		scheme core.Scheme
	}{
		{"Generic", core.SchemeGeneric},
		{"BC-SPUP", core.SchemeBCSPUP},
		{"RWG-UP", core.SchemeRWGUP},
		{"P-RRS", core.SchemePRRS},
		{"Multi-W", core.SchemeMultiW},
	} {
		cfg := worldConfig(2, s.scheme, expMem2, nil)
		w, err := mpi.NewWorld(cfg)
		if err != nil {
			return "", err
		}
		err = w.Run(func(p *mpi.Proc) error {
			buf := allocFor(p, dt, 1)
			if p.Rank() == 0 {
				fillBuf(p, buf, dt, 1, 1)
				return p.Send(buf, 1, dt, 1, 0)
			}
			_, err := p.Recv(buf, 1, dt, 0, 0)
			return err
		})
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&out, "=== %s (one 256 KB vector message, 128 blocks of 2 KB) ===\n", s.name)
		for r := 0; r < 2; r++ {
			role := "sender"
			if r == 1 {
				role = "receiver"
			}
			fmt.Fprintf(&out, "-- rank %d (%s)\n", r, role)
			out.WriteString(w.Endpoint(r).Counters().String())
		}
		out.WriteString("\n")
	}
	return out.String(), nil
}
