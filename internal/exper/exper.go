// Package exper reproduces the paper's evaluation (Section 8): one driver
// per figure, each returning a Result table whose series mirror the curves
// the paper plots. The cmd/dtbench binary prints them; bench_test.go wraps
// them as testing.B benchmarks; EXPERIMENTS.md records paper-vs-measured.
package exper

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Point is one x-position of a figure with the measured value of each series.
type Point struct {
	X      int64
	Series map[string]float64
}

// Result is one reproduced table or figure.
type Result struct {
	Name        string // e.g. "fig8"
	Title       string
	XLabel      string
	YLabel      string
	SeriesOrder []string
	Points      []Point
	Notes       []string
}

// Add appends a point.
func (r *Result) Add(x int64, series map[string]float64) {
	r.Points = append(r.Points, Point{X: x, Series: series})
}

// Table renders the result as an aligned text table.
func (r *Result) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s: %s\n", r.Name, r.Title)
	fmt.Fprintf(&b, "# y: %s\n", r.YLabel)
	cols := append([]string{r.XLabel}, r.SeriesOrder...)
	widths := make([]int, len(cols))
	rows := make([][]string, 0, len(r.Points)+1)
	rows = append(rows, cols)
	for _, p := range r.Points {
		row := make([]string, len(cols))
		row[0] = fmt.Sprintf("%d", p.X)
		for i, s := range r.SeriesOrder {
			v, ok := p.Series[s]
			if !ok {
				row[i+1] = "-"
				continue
			}
			row[i+1] = formatValue(v)
		}
		rows = append(rows, row)
	}
	for _, row := range rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	for _, row := range rows {
		for i, c := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "# %s\n", n)
	}
	return b.String()
}

func formatValue(v float64) string {
	switch {
	case v == 0:
		return "0"
	case math.Abs(v) >= 1000:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

// Improvement summarizes series/base across all points where both exist.
// For latency-like results (lower is better) pass invert=true so the factor
// is base/series; for bandwidth-like results pass invert=false... the
// convention here: factor>1 always means "series is better than base".
type Improvement struct {
	Min, Max, Avg float64
	N             int
}

// ImprovementOf computes the per-point improvement factor of series over
// base. lowerIsBetter selects base/series (latency) versus series/base
// (bandwidth).
func (r *Result) ImprovementOf(series, base string, lowerIsBetter bool) Improvement {
	var imp Improvement
	imp.Min = math.Inf(1)
	var sum float64
	for _, p := range r.Points {
		s, ok1 := p.Series[series]
		b, ok2 := p.Series[base]
		if !ok1 || !ok2 || s <= 0 || b <= 0 {
			continue
		}
		f := s / b
		if lowerIsBetter {
			f = b / s
		}
		if f < imp.Min {
			imp.Min = f
		}
		if f > imp.Max {
			imp.Max = f
		}
		sum += f
		imp.N++
	}
	if imp.N > 0 {
		imp.Avg = sum / float64(imp.N)
	} else {
		imp.Min = 0
	}
	return imp
}

// Crossover returns the smallest X at which series beats base (given the
// direction), or -1 if it never does.
func (r *Result) Crossover(series, base string, lowerIsBetter bool) int64 {
	pts := append([]Point(nil), r.Points...)
	sort.Slice(pts, func(i, j int) bool { return pts[i].X < pts[j].X })
	for _, p := range pts {
		s, ok1 := p.Series[series]
		b, ok2 := p.Series[base]
		if !ok1 || !ok2 {
			continue
		}
		if (lowerIsBetter && s < b) || (!lowerIsBetter && s > b) {
			return p.X
		}
	}
	return -1
}
