package exper

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/stats"
	"repro/internal/trace"
)

// BackendRow is one (scheme, backend) measurement of the wall-clock
// benchmark: a noncontiguous vector ping-pong timed with the real clock.
// On the simulator the wall numbers measure simulation speed; on the
// real-time fabric they measure the concurrent implementation itself —
// the repository's first real-performance trajectory (BENCH_backends.json).
type BackendRow struct {
	Scheme    string  `json:"scheme"`
	Backend   string  `json:"backend"`
	Bytes     int64   `json:"bytes"`      // payload bytes per message
	Iters     int     `json:"iters"`      // ping-pong round trips
	WallMS    float64 `json:"wall_ms"`    // whole-run wall time
	LatencyUS float64 `json:"latency_us"` // wall one-way latency per message
	MBps      float64 `json:"mbps"`       // wall payload bandwidth
	VirtualUS float64 `json:"virtual_us"` // virtual one-way latency (sim/shm, 0 on rt)
}

// BenchBackends runs the wall-clock ping-pong for every transfer scheme on
// each requested backend ("sim", "rt", "shm"). The workload is the paper's
// 64-column vector (32 KB payload, above the eager threshold, so the full
// rendezvous machinery runs).
func BenchBackends(backends []string, iters int) ([]BackendRow, error) {
	return BenchBackendsTraced(backends, iters, nil, nil)
}

// BenchBackendsTraced is BenchBackends with observability attached: every
// run records per-message spans into rec (namespaced
// "backend/scheme/rankN" so sequential runs do not collide in the exported
// trace) and per-scheme latency/bandwidth histograms into reg. Either may
// be nil.
func BenchBackendsTraced(backends []string, iters int, rec *trace.Recorder, reg *stats.Registry) ([]BackendRow, error) {
	return BenchBackendsOpts(backends, iters, rec, reg, nil)
}

// BenchBackendsOpts is BenchBackendsTraced with a configuration hook: mut
// (may be nil) edits each world's configuration before it is built —
// dtbench uses it to thread -workers and -batch through the benchmark.
func BenchBackendsOpts(backends []string, iters int, rec *trace.Recorder, reg *stats.Registry, mut func(*mpi.Config)) ([]BackendRow, error) {
	if iters <= 0 {
		iters = 50
	}
	const cols = 64
	dt := VectorType(cols)
	bytes := VectorBytes(cols)
	schemes := []core.Scheme{
		core.SchemeGeneric, core.SchemeBCSPUP, core.SchemeRWGUP,
		core.SchemePRRS, core.SchemeMultiW,
	}
	var rows []BackendRow
	for _, backend := range backends {
		for _, scheme := range schemes {
			rec.SetPrefix(backend + "/" + scheme.String() + "/")
			cfg := worldConfig(2, scheme, 256<<20, func(c *mpi.Config) {
				c.Backend = backend
				c.RTTimeout = 2 * time.Minute
				c.Trace = rec
				c.Metrics = reg
				if mut != nil {
					mut(c)
				}
			})
			w, err := mpi.NewWorld(cfg)
			if err != nil {
				return nil, err
			}
			var virtual float64
			start := time.Now()
			err = w.Run(func(p *mpi.Proc) error {
				buf := allocFor(p, dt, 1)
				if p.Rank() == 0 {
					fillBuf(p, buf, dt, 1, 1)
					t0 := p.Now()
					for i := 0; i < iters; i++ {
						if err := p.Send(buf, 1, dt, 1, 0); err != nil {
							return err
						}
						if _, err := p.Recv(buf, 1, dt, 1, 0); err != nil {
							return err
						}
					}
					virtual = p.Now().Sub(t0).Micros() / float64(2*iters)
					return nil
				}
				for i := 0; i < iters; i++ {
					if _, err := p.Recv(buf, 1, dt, 0, 0); err != nil {
						return err
					}
					if err := p.Send(buf, 1, dt, 0, 0); err != nil {
						return err
					}
				}
				return nil
			})
			wall := time.Since(start)
			if err != nil {
				return nil, fmt.Errorf("bench %s on %s: %w", scheme, backend, err)
			}
			row := BackendRow{
				Scheme:    scheme.String(),
				Backend:   backend,
				Bytes:     bytes,
				Iters:     iters,
				WallMS:    float64(wall.Nanoseconds()) / 1e6,
				LatencyUS: float64(wall.Microseconds()) / float64(2*iters),
				MBps:      float64(bytes*2*int64(iters)) / wall.Seconds() / 1e6,
			}
			if backend != mpi.BackendRT {
				// sim and shm both run on virtual time; only the real-time
				// fabric has no modeled clock to report.
				row.VirtualUS = virtual
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// BackendsJSON renders the rows as the BENCH_backends.json document.
func BackendsJSON(rows []BackendRow) ([]byte, error) {
	doc := struct {
		Benchmark string       `json:"benchmark"`
		Workload  string       `json:"workload"`
		Rows      []BackendRow `json:"rows"`
	}{
		Benchmark: "backend-pingpong",
		Workload:  "vector(128 x 64 of 4096, MPI_INT), 32 KB payload",
		Rows:      rows,
	}
	return json.MarshalIndent(doc, "", "  ")
}

// BackendsTable renders the rows as an aligned text table.
func BackendsTable(rows []BackendRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# backend ping-pong: %-8s %-8s %10s %12s %10s %12s\n",
		"scheme", "backend", "wall ms", "latency us", "MB/s", "virtual us")
	for _, r := range rows {
		virt := "-"
		if r.VirtualUS > 0 {
			virt = fmt.Sprintf("%.1f", r.VirtualUS)
		}
		fmt.Fprintf(&b, "%25s %-8s %10.2f %12.2f %10.1f %12s\n",
			r.Scheme, r.Backend, r.WallMS, r.LatencyUS, r.MBps, virt)
	}
	return b.String()
}
