package exper

import (
	"bytes"
	"encoding/json"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/datatype"
	"repro/internal/mem"
	"repro/internal/mpi"
	"repro/internal/simtime"
)

// The scale sweep makes world size a first-class axis: the paper's Alltoall
// experiment (Section 8.3) says derived-datatype schemes pay off inside
// collectives, and the MPICH2-over-InfiniBand design argument says per-peer
// state and matching must stay O(1)-per-peer or bookkeeping drowns the NIC.
// This sweep is the regression harness for both claims:
//
//   - "alltoall": a personalized exchange of 2 KB derived-type blocks, all
//     above the eager threshold, so every block routes through the rendezvous
//     scheme under test. Run per (ranks, scheme, layout) up to 256 ranks;
//     the winners table in BENCH_scale.json records which scheme wins each
//     (ranks, layout) cell.
//   - "halo": the examples/haloexchange 2-D ghost-cell exchange (vector
//     columns + contiguous rows) on square process grids up to 32 x 32 =
//     1024 ranks. Sparse traffic, huge world: this is the row that would
//     not finish if ConnectPeers, arena sizing, or credit budgets scaled
//     per-world instead of per-peer.
//   - "alltoall-eager": 1024 ranks x 512 B contiguous blocks — over a
//     million messages through one world. This row is the matching-stress
//     canary: with the old linear postedRecvs/unexpected scans it was
//     O(messages x peers) and effectively never finished; with the
//     per-(src, tag) index it completes in seconds of host time.
//
// Sim rows are bit-for-bit deterministic and guarded by `make scale-guard`;
// rt rows are wall-clock spot-checks (<= 64 ranks, per the real-time
// fabric's host-thread budget) and exempt from the guard.
const (
	scaleEagerThreshold = 1 << 10 // rendezvous blocks start at 1 KB
	scaleAlltoallCount  = 2       // counts per peer: 2 x 1 KB type = 2 KB blocks
	scaleHaloTile       = 256     // 2 KB halo edges: rendezvous
	scaleHaloSteps      = 2
	scaleEagerBlock     = 128 // int32s: 512 B blocks, below the threshold
)

// ScaleRankAxis is the world sizes of the sweep's alltoall leg. The halo
// leg uses the square sizes {64, 256, 1024}; the eager leg runs at 1024.
var ScaleRankAxis = []int{2, 16, 64, 256, 1024}

// scaleSchemes are the rendezvous schemes the sweep compares.
var scaleSchemes = []core.Scheme{core.SchemeGeneric, core.SchemeBCSPUP, core.SchemeMultiW}

// ScaleRow is one (backend, pattern, ranks, scheme, layout) measurement.
// Sim rows fill VirtualMS; rt rows fill WallMS.
type ScaleRow struct {
	Backend    string  `json:"backend"`
	Pattern    string  `json:"pattern"` // alltoall | halo | alltoall-eager
	Ranks      int     `json:"ranks"`
	Scheme     string  `json:"scheme"`
	Layout     string  `json:"layout"` // vector | contig | grid2d
	BlockBytes int64   `json:"block_bytes"`
	Msgs       int64   `json:"msgs"`       // eager + rendezvous sends, world total
	EagerMsgs  int64   `json:"eager_msgs"` // includes collective control traffic
	RndvMsgs   int64   `json:"rndv_msgs"`
	VirtualMS  float64 `json:"virtual_ms,omitempty"` // sim: modeled exchange time
	WallMS     float64 `json:"wall_ms,omitempty"`    // rt: host wall-clock
}

// ScaleWinner records which scheme had the lowest modeled time for one
// (ranks, layout) cell of the alltoall leg — the sweep's answer to "which
// scheme wins where", per the paper's Section 8.3 discussion.
type ScaleWinner struct {
	Ranks     int     `json:"ranks"`
	Layout    string  `json:"layout"`
	Scheme    string  `json:"scheme"`
	VirtualMS float64 `json:"virtual_ms"`
}

// scaleLayouts returns the sweep's block layouts: a strided vector and a
// contiguous control with the same 1 KB type size.
func scaleLayouts() []struct {
	name string
	dt   *datatype.Type
} {
	vec := datatype.Must(datatype.TypeVector(32, 8, 24, datatype.Int32))
	ctg := datatype.Must(datatype.TypeContiguous(256, datatype.Int32))
	return []struct {
		name string
		dt   *datatype.Type
	}{{"vector", vec}, {"contig", ctg}}
}

// scaleWorldConfig builds one sweep point's world from the rank-scaled
// budgets, with the eager threshold pinned so block routing is explicit.
func scaleWorldConfig(backend string, n int, scheme core.Scheme) mpi.Config {
	cfg := mpi.ScaledConfig(n)
	cfg.Backend = backend
	cfg.RTTimeout = 2 * time.Minute
	cfg.Core.Scheme = scheme
	cfg.Core.EagerThreshold = scaleEagerThreshold
	return cfg
}

// worldSends sums the protocol send counters over all endpoints.
func worldSends(w *mpi.World, n int) (eager, rndv int64) {
	for i := 0; i < n; i++ {
		c := w.Endpoint(i).Counters()
		eager += c.EagerSends
		rndv += c.RendezvousSends
	}
	return eager, rndv
}

// scaleAlltoall times one personalized exchange of derived-type blocks.
func scaleAlltoall(backend string, n int, scheme core.Scheme, layout string, dt *datatype.Type) (ScaleRow, error) {
	w, err := mpi.NewWorld(scaleWorldConfig(backend, n, scheme))
	if err != nil {
		return ScaleRow{}, err
	}
	var virtual simtime.Duration
	var wall time.Duration
	err = w.Run(func(p *mpi.Proc) error {
		sbuf := allocFor(p, dt, n*scaleAlltoallCount)
		rbuf := allocFor(p, dt, n*scaleAlltoallCount)
		fillBuf(p, sbuf, dt, n*scaleAlltoallCount, byte(p.Rank()))
		if err := p.Barrier(); err != nil {
			return err
		}
		t0, w0 := p.Now(), time.Now()
		if err := p.Alltoall(sbuf, scaleAlltoallCount, dt, rbuf, scaleAlltoallCount, dt); err != nil {
			return err
		}
		if err := p.Barrier(); err != nil {
			return err
		}
		if p.Rank() == 0 {
			virtual, wall = p.Now().Sub(t0), time.Since(w0)
		}
		return nil
	})
	if err != nil {
		return ScaleRow{}, fmt.Errorf("scale alltoall n=%d %s/%s on %s: %w", n, scheme, layout, backend, err)
	}
	row := ScaleRow{
		Backend:    backend,
		Pattern:    "alltoall",
		Ranks:      n,
		Scheme:     scheme.String(),
		Layout:     layout,
		BlockBytes: dt.Size() * scaleAlltoallCount,
	}
	row.EagerMsgs, row.RndvMsgs = worldSends(w, n)
	row.Msgs = row.EagerMsgs + row.RndvMsgs
	if backend == mpi.BackendSim {
		row.VirtualMS = float64(virtual) / 1e6
	} else {
		row.WallMS = float64(wall.Nanoseconds()) / 1e6
	}
	return row, nil
}

// scaleEagerAlltoall is the 1024-rank matching-stress row: a full exchange
// of sub-threshold contiguous blocks, over a million eager messages.
func scaleEagerAlltoall(backend string, n int) (ScaleRow, error) {
	dt := datatype.Must(datatype.TypeContiguous(scaleEagerBlock, datatype.Int32))
	w, err := mpi.NewWorld(scaleWorldConfig(backend, n, core.SchemeBCSPUP))
	if err != nil {
		return ScaleRow{}, err
	}
	var virtual simtime.Duration
	var wall time.Duration
	err = w.Run(func(p *mpi.Proc) error {
		sbuf := allocFor(p, dt, n)
		rbuf := allocFor(p, dt, n)
		fillBuf(p, sbuf, dt, n, byte(p.Rank()))
		t0, w0 := p.Now(), time.Now()
		if err := p.Alltoall(sbuf, 1, dt, rbuf, 1, dt); err != nil {
			return err
		}
		if p.Rank() == 0 {
			virtual, wall = p.Now().Sub(t0), time.Since(w0)
		}
		return nil
	})
	if err != nil {
		return ScaleRow{}, fmt.Errorf("scale eager alltoall n=%d on %s: %w", n, backend, err)
	}
	row := ScaleRow{
		Backend:    backend,
		Pattern:    "alltoall-eager",
		Ranks:      n,
		Scheme:     core.SchemeBCSPUP.String(),
		Layout:     "contig",
		BlockBytes: dt.Size(),
	}
	row.EagerMsgs, row.RndvMsgs = worldSends(w, n)
	row.Msgs = row.EagerMsgs + row.RndvMsgs
	if backend == mpi.BackendSim {
		row.VirtualMS = float64(virtual) / 1e6
	} else {
		row.WallMS = float64(wall.Nanoseconds()) / 1e6
	}
	return row, nil
}

// scaleHalo times the 2-D ghost-cell exchange from examples/haloexchange on
// a px x px process grid: float64 column halos as strided vectors, row halos
// contiguous, both above the eager threshold at the sweep's tile size.
func scaleHalo(backend string, px int, scheme core.Scheme) (ScaleRow, error) {
	n := px * px
	tile := scaleHaloTile
	w := tile + 2
	rowBytes := int64(w) * 8
	colType := datatype.Must(datatype.TypeVector(tile, 1, w, datatype.Float64))
	rowType := datatype.Must(datatype.TypeContiguous(tile, datatype.Float64))

	world, err := mpi.NewWorld(scaleWorldConfig(backend, n, scheme))
	if err != nil {
		return ScaleRow{}, err
	}
	var virtual simtime.Duration
	var wall time.Duration
	err = world.Run(func(p *mpi.Proc) error {
		rank := p.Rank()
		gx, gy := rank%px, rank/px
		grid := p.Mem().MustAlloc(int64(w) * rowBytes)
		at := func(r, c int) mem.Addr { return grid + mem.Addr(int64(r)*rowBytes+int64(c)*8) }
		nbr := func(dx, dy int) int {
			nx, ny := gx+dx, gy+dy
			if nx < 0 || nx >= px || ny < 0 || ny >= px {
				return -1
			}
			return ny*px + nx
		}
		west, east := nbr(-1, 0), nbr(1, 0)
		north, south := nbr(0, -1), nbr(0, 1)
		if err := p.Barrier(); err != nil {
			return err
		}
		t0, w0 := p.Now(), time.Now()
		for step := 0; step < scaleHaloSteps; step++ {
			var reqs []*core.Request
			if west >= 0 {
				reqs = append(reqs, p.Irecv(at(1, 0), 1, colType, west, 0))
			}
			if east >= 0 {
				reqs = append(reqs, p.Irecv(at(1, tile+1), 1, colType, east, 0))
			}
			if north >= 0 {
				reqs = append(reqs, p.Irecv(at(0, 1), 1, rowType, north, 1))
			}
			if south >= 0 {
				reqs = append(reqs, p.Irecv(at(tile+1, 1), 1, rowType, south, 1))
			}
			if west >= 0 {
				reqs = append(reqs, p.Isend(at(1, 1), 1, colType, west, 0))
			}
			if east >= 0 {
				reqs = append(reqs, p.Isend(at(1, tile), 1, colType, east, 0))
			}
			if north >= 0 {
				reqs = append(reqs, p.Isend(at(1, 1), 1, rowType, north, 1))
			}
			if south >= 0 {
				reqs = append(reqs, p.Isend(at(tile, 1), 1, rowType, south, 1))
			}
			if err := p.Wait(reqs...); err != nil {
				return err
			}
		}
		if err := p.Barrier(); err != nil {
			return err
		}
		if rank == 0 {
			virtual, wall = p.Now().Sub(t0), time.Since(w0)
		}
		return nil
	})
	if err != nil {
		return ScaleRow{}, fmt.Errorf("scale halo %dx%d %s on %s: %w", px, px, scheme, backend, err)
	}
	row := ScaleRow{
		Backend:    backend,
		Pattern:    "halo",
		Ranks:      n,
		Scheme:     scheme.String(),
		Layout:     "grid2d",
		BlockBytes: int64(tile) * 8,
	}
	row.EagerMsgs, row.RndvMsgs = worldSends(world, n)
	row.Msgs = row.EagerMsgs + row.RndvMsgs
	if backend == mpi.BackendSim {
		row.VirtualMS = float64(virtual) / 1e6
	} else {
		row.WallMS = float64(wall.Nanoseconds()) / 1e6
	}
	return row, nil
}

// ScaleSweep runs the scale sweep on the requested backends ("sim", "rt").
//
// The sim leg covers the full design: alltoall at {2, 16, 64} ranks over
// scheme x layout, alltoall at 256 ranks over schemes on the vector layout
// (the layout axis is settled by 64 ranks; the big world tracks the
// non-contiguous case), halo at {64, 256, 1024} ranks over schemes, and the
// 1024-rank eager matching-stress row. The rt leg spot-checks the real-time
// fabric at small worlds: alltoall at {2, 16} and halo at 64 ranks.
func ScaleSweep(backends []string) ([]ScaleRow, error) {
	var rows []ScaleRow
	add := func(r ScaleRow, err error) error {
		if err != nil {
			return err
		}
		rows = append(rows, r)
		// Big worlds hold their arenas through finalizers; run them now so
		// dead mappings unmap before the next world builds instead of
		// stacking tens of gigabytes of faulted pages across the sweep.
		runtime.GC()
		runtime.GC()
		return nil
	}
	for _, backend := range backends {
		if backend == mpi.BackendSim {
			for _, n := range ScaleRankAxis {
				for _, scheme := range scaleSchemes {
					for _, lay := range scaleLayouts() {
						if n > 64 && (n > 256 || lay.name != "vector") {
							continue
						}
						// Multi-W posts one RDMA write per run: at 256 ranks
						// the vector leg is 4M descriptors for a row whose
						// outcome (Multi-W loses past small worlds) the 16-
						// and 64-rank cells already show. Cap it at 64.
						if n > 64 && scheme == core.SchemeMultiW {
							continue
						}
						if err := add(scaleAlltoall(backend, n, scheme, lay.name, lay.dt)); err != nil {
							return nil, err
						}
					}
				}
			}
			for _, px := range []int{8, 16, 32} {
				for _, scheme := range scaleSchemes {
					if err := add(scaleHalo(backend, px, scheme)); err != nil {
						return nil, err
					}
				}
			}
			if err := add(scaleEagerAlltoall(backend, 1024)); err != nil {
				return nil, err
			}
			continue
		}
		for _, n := range []int{2, 16} {
			lay := scaleLayouts()[0]
			if err := add(scaleAlltoall(backend, n, core.SchemeBCSPUP, lay.name, lay.dt)); err != nil {
				return nil, err
			}
		}
		if err := add(scaleHalo(backend, 8, core.SchemeBCSPUP)); err != nil {
			return nil, err
		}
	}
	return rows, nil
}

// ScaleWinners reduces the sim alltoall rows to the lowest-time scheme per
// (ranks, layout) cell.
func ScaleWinners(rows []ScaleRow) []ScaleWinner {
	type cell struct {
		ranks  int
		layout string
	}
	best := map[cell]ScaleRow{}
	for _, r := range rows {
		if r.Backend != mpi.BackendSim || r.Pattern != "alltoall" {
			continue
		}
		c := cell{r.Ranks, r.Layout}
		if b, ok := best[c]; !ok || r.VirtualMS < b.VirtualMS {
			best[c] = r
		}
	}
	winners := make([]ScaleWinner, 0, len(best))
	for c, r := range best {
		winners = append(winners, ScaleWinner{Ranks: c.ranks, Layout: c.layout, Scheme: r.Scheme, VirtualMS: r.VirtualMS})
	}
	sort.Slice(winners, func(i, j int) bool {
		if winners[i].Ranks != winners[j].Ranks {
			return winners[i].Ranks < winners[j].Ranks
		}
		return winners[i].Layout < winners[j].Layout
	})
	return winners
}

// ScaleJSON renders the rows as the BENCH_scale.json document, with the
// deterministic sim rows separated from the machine-dependent rt rows.
func ScaleJSON(rows []ScaleRow) ([]byte, error) {
	doc := struct {
		Benchmark string        `json:"benchmark"`
		Workload  string        `json:"workload"`
		Note      string        `json:"note"`
		Winners   []ScaleWinner `json:"winners"`
		SimRows   []ScaleRow    `json:"sim_rows"`
		RTRows    []ScaleRow    `json:"rt_rows"`
	}{
		Benchmark: "scale-sweep",
		Workload: fmt.Sprintf("alltoall: %d x 1 KB derived-type blocks per peer; halo: %d^2-cell tiles, %d steps; eager: %d B blocks at 1024 ranks",
			scaleAlltoallCount, scaleHaloTile, scaleHaloSteps, scaleEagerBlock*4),
		Note:    "sim_rows are deterministic (guarded by `make scale-guard`); rt_rows are wall-clock and machine-dependent; winners summarize the alltoall leg",
		Winners: ScaleWinners(rows),
		SimRows: filterScale(rows, mpi.BackendSim),
		RTRows:  filterScale(rows, mpi.BackendRT),
	}
	return json.MarshalIndent(doc, "", "  ")
}

func filterScale(rows []ScaleRow, backend string) []ScaleRow {
	out := []ScaleRow{}
	for _, r := range rows {
		if r.Backend == backend {
			out = append(out, r)
		}
	}
	return out
}

// ScaleTable renders the rows as an aligned text table.
func ScaleTable(rows []ScaleRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# scale sweep: %-8s %-15s %6s %-8s %-7s %10s %9s %9s %12s %10s\n",
		"backend", "pattern", "ranks", "scheme", "layout", "block B", "eager", "rndv", "virtual ms", "wall ms")
	for _, r := range rows {
		cell := func(v float64) string {
			if v == 0 {
				return "-"
			}
			return fmt.Sprintf("%.3f", v)
		}
		fmt.Fprintf(&b, "%22s %-15s %6d %-8s %-7s %10d %9d %9d %12s %10s\n",
			r.Backend, r.Pattern, r.Ranks, r.Scheme, r.Layout, r.BlockBytes,
			r.EagerMsgs, r.RndvMsgs, cell(r.VirtualMS), cell(r.WallMS))
	}
	for _, w := range ScaleWinners(rows) {
		fmt.Fprintf(&b, "# winner %4d ranks / %-7s: %s (%.3f ms)\n", w.Ranks, w.Layout, w.Scheme, w.VirtualMS)
	}
	return b.String()
}

// ScaleGuard regenerates the sweep's sim rows and compares them
// byte-for-byte against the sim_rows of a committed BENCH_scale.json,
// matching the tune-guard/par-guard/soak-guard discipline.
func ScaleGuard(committed []byte) error {
	var doc struct {
		SimRows json.RawMessage `json:"sim_rows"`
	}
	if err := json.Unmarshal(committed, &doc); err != nil {
		return fmt.Errorf("scale guard: bad committed document: %w", err)
	}
	rows, err := ScaleSweep([]string{mpi.BackendSim})
	if err != nil {
		return err
	}
	fresh, err := json.Marshal(filterScale(rows, mpi.BackendSim))
	if err != nil {
		return err
	}
	var want bytes.Buffer
	if err := json.Compact(&want, doc.SimRows); err != nil {
		return fmt.Errorf("scale guard: bad sim_rows: %w", err)
	}
	if !bytes.Equal(fresh, want.Bytes()) {
		return fmt.Errorf("scale guard: sim rows drifted from committed BENCH_scale.json\ncommitted: %s\nfresh:     %s",
			want.Bytes(), fresh)
	}
	return nil
}
