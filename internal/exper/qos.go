package exper

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/qos"
	"repro/internal/stats"
	"repro/internal/traffic"
)

// The QoS sweep measures what the service-mode layer (internal/qos) buys
// under heavy mixed traffic: closed-loop Multi-W bulk streams into one
// destination rank flood its inbox with RDMA-write doorbell batches, while a
// latency-sensitive eager stream to the same rank measures per-message
// injection-to-delivery latency. With QoS off the eager class queues behind
// whole Multi-W descriptor floods; with lanes + per-peer windows on, a bulk
// transfer never occupies more than a descriptor window per doorbell and a
// byte window in flight, so eager p99 collapses.
//
// rt rows are the measurement that matters (the contention is a wall-clock
// artifact of concurrent delivery); sim rows are included for completeness
// and are deterministic. The soak golden (SOAK_traffic.json, `make
// soak-guard`) is the sim-side regression net for this subsystem.
const (
	qosRanks      = 4
	qosBulkBytes  = 512 << 10 // per bulk message; 64 B runs -> ~8k descriptors
	qosBulkMsgs   = 20
	qosEagerBytes = 2 << 10
	qosEagerMsgs  = 1000
	// qosWarmup discards the startup transient: the first Multi-W message
	// per bulk flow pays one-time buffer registration and layout flattening
	// (~5 ms each on rt), during which early eager messages queue as
	// unexpected and drain in a burst. Those samples measure setup cost,
	// not steady-state queueing, on both configurations.
	qosWarmup     = 150
	qosBulkWarmup = 2
)

// QoSPolicy is the sweep's enabled-mode policy: bulk at 64 KiB, four
// descriptors per doorbell, 128 KiB in flight per peer, and admission
// pressure at one free staging slot.
func QoSPolicy() qos.Policy {
	return qos.Policy{
		BulkThreshold: 64 << 10,
		DescWindow:    4,
		ByteWindow:    128 << 10,
		MinFreeSlots:  1,
	}
}

// qosFlows is the contention mix: two closed-loop bulk senders keep rank 0's
// inbox saturated for longer than the whole eager run takes in either
// configuration, so every eager sample measures per-message latency UNDER
// bulk load. The eager stream is closed-loop too (one message in flight):
// its latency is then pure delivery delay behind the bulk descriptor
// backlog, with no self-queueing.
func qosFlows() []traffic.Flow {
	return []traffic.Flow{
		{ID: 0, Src: 2, Dst: 0, Count: qosBulkMsgs, Bytes: qosBulkBytes, Bulk: true, Closed: true, Warmup: qosBulkWarmup},
		{ID: 1, Src: 3, Dst: 0, Count: qosBulkMsgs, Bytes: qosBulkBytes, Bulk: true, Closed: true, Warmup: qosBulkWarmup},
		{ID: 2, Src: 1, Dst: 0, Count: qosEagerMsgs, Bytes: qosEagerBytes, Closed: true, Warmup: qosWarmup},
	}
}

// QoSRow is one (backend, qos, class) latency measurement in microseconds.
type QoSRow struct {
	Backend string  `json:"backend"`
	QoS     bool    `json:"qos"`
	Class   string  `json:"class"`
	N       int64   `json:"n"`
	P50US   float64 `json:"p50_us"`
	P99US   float64 `json:"p99_us"`
	MaxUS   float64 `json:"max_us"`
}

// QoSSweep runs the contention workload with the service layer off and on,
// on each requested backend, and returns one row per (backend, qos, class).
func QoSSweep(backends []string) ([]QoSRow, error) {
	var rows []QoSRow
	for _, backend := range backends {
		for _, enabled := range []bool{false, true} {
			cfg := worldConfig(qosRanks, core.SchemeMultiW, 256<<20, func(c *mpi.Config) {
				c.Backend = backend
				c.RTTimeout = 2 * time.Minute
			})
			if enabled {
				pol := QoSPolicy()
				cfg.Core.QoS = &pol
			}
			w, err := mpi.NewWorld(cfg)
			if err != nil {
				return nil, err
			}
			reg := stats.NewRegistry()
			r := traffic.NewRunner(traffic.Spec{Ranks: qosRanks, Explicit: qosFlows()}, reg)
			if err := r.Run(w); err != nil {
				return nil, fmt.Errorf("qos sweep: qos=%v on %s: %w", enabled, backend, err)
			}
			if ef, bf := r.Failures(); ef != 0 || bf != 0 {
				return nil, fmt.Errorf("qos sweep: qos=%v on %s: %d eager / %d bulk failures",
					enabled, backend, ef, bf)
			}
			for _, cl := range []struct {
				name string
				hist *stats.Histogram
			}{
				{"eager", reg.Histogram(traffic.HistEager)},
				{"bulk", reg.Histogram(traffic.HistBulk)},
			} {
				rows = append(rows, QoSRow{
					Backend: backend,
					QoS:     enabled,
					Class:   cl.name,
					N:       cl.hist.Count(),
					P50US:   float64(cl.hist.Quantile(0.50)) / 1e3,
					P99US:   float64(cl.hist.Quantile(0.99)) / 1e3,
					MaxUS:   float64(cl.hist.Quantile(1)) / 1e3,
				})
			}
		}
	}
	return rows, nil
}

// EagerP99Improvement returns how much the eager class's p99 improves with
// the service layer on, on the given backend (off/on ratio; >1 is better
// with QoS). Zero when either row is missing.
func EagerP99Improvement(rows []QoSRow, backend string) float64 {
	var off, on float64
	for _, r := range rows {
		if r.Backend != backend || r.Class != "eager" {
			continue
		}
		if r.QoS {
			on = r.P99US
		} else {
			off = r.P99US
		}
	}
	if off == 0 || on == 0 {
		return 0
	}
	return off / on
}

// QoSJSON renders the rows as the BENCH_qos.json document.
func QoSJSON(rows []QoSRow) ([]byte, error) {
	doc := struct {
		Benchmark   string   `json:"benchmark"`
		Workload    string   `json:"workload"`
		Note        string   `json:"note"`
		Improvement float64  `json:"rt_eager_p99_improvement,omitempty"`
		SimRows     []QoSRow `json:"sim_rows"`
		RTRows      []QoSRow `json:"rt_rows"`
	}{
		Benchmark: "qos-service-mode",
		Workload: fmt.Sprintf("%d ranks; 2 closed-loop Multi-W bulk streams (%d x %d KB, 64 B runs) + 1 eager stream (%d x %d B), all into rank 0",
			qosRanks, qosBulkMsgs, qosBulkBytes>>10, qosEagerMsgs, qosEagerBytes),
		Note: "rt rows are wall-clock and machine-dependent; the target is eager p99 at least 2x better " +
			"with lanes+windows on. sim rows are deterministic but unguarded (the soak golden covers sim).",
		Improvement: EagerP99Improvement(rows, mpi.BackendRT),
		SimRows:     filterQoS(rows, mpi.BackendSim),
		RTRows:      filterQoS(rows, mpi.BackendRT),
	}
	return json.MarshalIndent(doc, "", "  ")
}

func filterQoS(rows []QoSRow, backend string) []QoSRow {
	out := []QoSRow{}
	for _, r := range rows {
		if r.Backend == backend {
			out = append(out, r)
		}
	}
	return out
}

// QoSTable renders the rows as an aligned text table.
func QoSTable(rows []QoSRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# qos service mode: %-8s %5s %7s %8s %12s %12s %12s\n",
		"backend", "qos", "class", "msgs", "p50 us", "p99 us", "max us")
	for _, r := range rows {
		fmt.Fprintf(&b, "%20s %5v %7s %8d %12.2f %12.2f %12.2f\n",
			r.Backend, r.QoS, r.Class, r.N, r.P50US, r.P99US, r.MaxUS)
	}
	if imp := EagerP99Improvement(rows, mpi.BackendRT); imp > 0 {
		fmt.Fprintf(&b, "rt eager p99 improvement with QoS: %.2fx (target >= 2x)\n", imp)
	}
	return b.String()
}

// --- Traffic soak golden -----------------------------------------------------

// The soak runs two phases on the simulator with the service layer on:
// first the mixed heavy phase (bulk + eager over several communicators),
// then an eager-only cooldown. Registry gauge high-waters are windowed per
// phase with ResetHighs — the cooldown phase's pool high-water must read 0,
// not the mixed phase's peak. Everything is deterministic, so the document
// is byte-identical across reruns and `make soak-guard` enforces it.

// soakSpec returns the soak's phase specs.
func soakSpecs() (mixed, cooldown traffic.Spec) {
	mixed = traffic.Spec{
		Seed:       11,
		Ranks:      8,
		Comms:      3,
		EagerFlows: 10,
		BulkFlows:  5,
		Msgs:       6,
		EagerBytes: 2 << 10,
		BulkBytes:  256 << 10,
		ClosedFrac: 0.5,
		GapNs:      30_000,
	}
	cooldown = traffic.Spec{
		Seed:       12,
		Ranks:      8,
		Comms:      2,
		EagerFlows: 8,
		BulkFlows:  0,
		Msgs:       6,
		EagerBytes: 1 << 10,
		ClosedFrac: 1,
	}
	return mixed, cooldown
}

// SoakPhase is one phase's snapshot in the golden document.
type SoakPhase struct {
	Name     string `json:"name"`
	Counters string `json:"counters"`

	// Windowed gauge high-waters (ResetHighs runs between phases).
	PoolPackHigh   int64 `json:"pool_pack_high"`
	PoolUnpackHigh int64 `json:"pool_unpack_high"`
	RegPagesHigh   int64 `json:"reg_pages_high"`
}

// SoakDoc is the SOAK_traffic.json document.
type SoakDoc struct {
	Benchmark string             `json:"benchmark"`
	Note      string             `json:"note"`
	Phases    []SoakPhase        `json:"phases"`
	EagerLat  traffic.BucketDump `json:"eager_lat_ns"`
	BulkLat   traffic.BucketDump `json:"bulk_lat_ns"`
}

// SoakRun executes the two-phase sim soak and returns the golden document.
func SoakRun() (*SoakDoc, error) {
	reg := stats.NewRegistry()
	doc := &SoakDoc{
		Benchmark: "traffic-soak",
		Note: "sim backend, QoS on; deterministic and byte-identical across reruns (make soak-guard). " +
			"Gauge high-waters are windowed per phase: the eager-only cooldown must not inherit the mixed phase's pool peak.",
	}
	mixed, cooldown := soakSpecs()
	for _, ph := range []struct {
		name string
		spec traffic.Spec
	}{{"mixed", mixed}, {"eager-cooldown", cooldown}} {
		cfg := mpi.DefaultConfig()
		cfg.Ranks = ph.spec.Ranks
		cfg.Metrics = reg
		pol := QoSPolicy()
		cfg.Core.QoS = &pol
		w, err := mpi.NewWorld(cfg)
		if err != nil {
			return nil, err
		}
		r := traffic.NewRunner(ph.spec, reg)
		if err := r.Run(w); err != nil {
			return nil, fmt.Errorf("soak phase %s: %w", ph.name, err)
		}
		if ef, bf := r.Failures(); ef != 0 || bf != 0 {
			return nil, fmt.Errorf("soak phase %s: %d eager / %d bulk failures", ph.name, ef, bf)
		}
		ctr := traffic.AggregateCounters(w)
		doc.Phases = append(doc.Phases, SoakPhase{
			Name:           ph.name,
			Counters:       ctr.String(),
			PoolPackHigh:   reg.Gauge("pool_used/pack").High(),
			PoolUnpackHigh: reg.Gauge("pool_used/unpack").High(),
			RegPagesHigh:   reg.Gauge("registered_pages").High(),
		})
		reg.ResetHighs()
	}
	doc.EagerLat = traffic.DumpHistogram(reg.Histogram(traffic.HistEager))
	doc.BulkLat = traffic.DumpHistogram(reg.Histogram(traffic.HistBulk))
	return doc, nil
}

// SoakJSON renders the soak document.
func SoakJSON(doc *SoakDoc) ([]byte, error) {
	return json.MarshalIndent(doc, "", "  ")
}

// SoakGuard regenerates the soak and compares it byte-for-byte against the
// committed SOAK_traffic.json. Every field is sim-deterministic, so unlike
// the other guards the whole document is compared, not just sim rows.
func SoakGuard(committed []byte) error {
	doc, err := SoakRun()
	if err != nil {
		return err
	}
	fresh, err := json.Marshal(doc)
	if err != nil {
		return err
	}
	var want bytes.Buffer
	if err := json.Compact(&want, committed); err != nil {
		return fmt.Errorf("soak guard: bad committed document: %w", err)
	}
	if !bytes.Equal(fresh, want.Bytes()) {
		return fmt.Errorf("soak guard: SOAK_traffic.json drifted from a fresh run\ncommitted: %s\nfresh:     %s",
			want.Bytes(), fresh)
	}
	return nil
}
