package exper

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/tuner"
)

// TestTunerSweepConvergence is the convergence acceptance criterion: on the
// adversarial machine the static thresholds choose a scheme at least 2x
// worse than the best fixed scheme, and the tuner's last-quartile mean comes
// within 10% of that best fixed scheme — deterministically, on the sim
// backend, with the default fixed seed.
func TestTunerSweepConvergence(t *testing.T) {
	rep, table, err := TunerSweep(160)
	if err != nil {
		t.Fatal(err)
	}
	if rep.BestFixed != core.SchemeBCSPUP.String() {
		t.Logf("note: best fixed scheme is %s", rep.BestFixed)
	}
	if rep.StaticVsBest < 2.0 {
		t.Fatalf("static auto only %.2fx worse than best fixed (%s at %.1fus) — workload not adversarial enough",
			rep.StaticVsBest, rep.BestFixed, rep.BestFixedUS)
	}
	if rep.TunedLastQVsBest > 1.10 {
		t.Fatalf("tuned last-quartile mean %.2fx the best fixed scheme, want <= 1.10x (report: %s)",
			rep.TunedLastQVsBest, TunerTable(rep))
	}
	// Warm start replays the learned table with exploration off, so it must
	// be near-best from the first message.
	if rep.WarmVsBest > 1.10 {
		t.Fatalf("warm-start mean %.2fx the best fixed scheme, want <= 1.10x", rep.WarmVsBest)
	}
	if len(table) == 0 {
		t.Fatal("sweep exported an empty tuning table")
	}
	var tuned *TunerRow
	for i := range rep.Rows {
		if rep.Rows[i].Mode == "tuned" {
			tuned = &rep.Rows[i]
		}
	}
	if tuned == nil {
		t.Fatal("no tuned row in report")
	}
	if tuned.Explorations == 0 {
		t.Error("cold tuner never explored")
	}
	if tuned.Explorations+tuned.Exploitations != int64(rep.Msgs) {
		t.Errorf("decisions %d+%d != msgs %d", tuned.Explorations, tuned.Exploitations, rep.Msgs)
	}
}

// TestTunerSweepDeterministic pins the replayability contract that the
// Makefile BENCH_tuner.json guard relies on: two sweeps produce byte-equal
// JSON (virtual time only, seeded RNG, single-threaded sim event loop).
func TestTunerSweepDeterministic(t *testing.T) {
	r1, t1, err := TunerSweep(96)
	if err != nil {
		t.Fatal(err)
	}
	r2, t2, err := TunerSweep(96)
	if err != nil {
		t.Fatal(err)
	}
	j1, err := TunerJSON(r1)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := TunerJSON(r2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1, j2) {
		t.Fatalf("sweep not deterministic:\n--- run 1\n%s\n--- run 2\n%s", j1, j2)
	}
	if !bytes.Equal(t1, t2) {
		t.Fatal("exported tuning tables differ between identical sweeps")
	}
}

// TestTunerRoundTripSelections: the table exported by the sweep, imported
// into a fresh tuner with exploration off, reproduces the same selections it
// would make itself (acceptance criterion, end-to-end flavor of the unit
// round-trip test).
func TestTunerRoundTripSelections(t *testing.T) {
	_, table, err := TunerSweep(96)
	if err != nil {
		t.Fatal(err)
	}
	cfg := tuner.DefaultConfig()
	cfg.Explore = false
	a := tuner.New(cfg)
	if err := a.ImportJSON(table); err != nil {
		t.Fatal(err)
	}
	b := tuner.New(cfg)
	if err := b.ImportJSON(table); err != nil {
		t.Fatal(err)
	}
	in := core.SelectorInput{
		Peer: 0, Bytes: 16 << 10, SAvg: 64, RAvg: 64, RRuns: 256,
		Eligible: []core.Scheme{core.SchemeGeneric, core.SchemeBCSPUP,
			core.SchemeRWGUP, core.SchemePRRS, core.SchemeMultiW},
		Static: core.SchemeRWGUP,
	}
	d1 := a.Choose(in)
	d2 := b.Choose(in)
	if d1.Scheme != d2.Scheme {
		t.Fatalf("same table, different selections: %v vs %v", d1.Scheme, d2.Scheme)
	}
	if d1.Explored || d2.Explored {
		t.Fatal("exploration disabled but a tuner explored")
	}
}
