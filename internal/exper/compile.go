package exper

import (
	"bytes"
	"encoding/json"
	"fmt"
	"runtime"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/datatype"
	"repro/internal/mem"
	"repro/internal/pack"
	"repro/internal/simtime"
	"repro/internal/verbs"
)

// The compiler sweep gates the datatype compiler: for a set of layout shapes
// spanning every program kind it compares three pack paths —
//
//   - interpreted: the dataloop-walking datatype.Cursor,
//   - compiled: the datatype.Compile program replay,
//   - copy: a raw contiguous copy() of the same bytes, the upper bound,
//
// on two axes. Sim rows price each path with the virtual cost model
// (CopyTime + per-run datatype-processing overhead; the compiled advance is
// charged compiledPerRun instead of TypeProcPerRun) — pure arithmetic,
// bit-for-bit deterministic, guarded by `make compile-guard`. Host rows
// measure real wall-clock ns/op, MB/s and allocs/op of the actual engines
// on this machine and are exempt from the guard.
//
// Both engines must produce byte-identical staging output; the sweep
// verifies that on every shape before timing anything.
const (
	// compiledPerRun is the modeled per-run datatype-processing cost of the
	// compiled replay: the O(1) cursor advance (a counter increment and an
	// add, or a table lookup) versus the interpreted cursor's stack walk
	// priced at Config.TypeProcPerRun (25 ns). Generic programs replay the
	// interpreted cursor and are priced at the interpreted rate.
	compiledPerRun = 2 * simtime.Nanosecond

	compileWarmup = 4
	compileRounds = 8  // interleaved timing rounds per path
	compileIters  = 16 // pack operations per round
)

// CompileRow is one (shape, path) measurement. Sim rows fill the virtual
// fields; host rows the wall-clock fields.
type CompileRow struct {
	Family string `json:"-"` // "sim" or "host" (positions the row in the document)
	Shape  string `json:"shape"`
	Path   string `json:"path"`           // interpreted | compiled | copy
	Kind   string `json:"kind,omitempty"` // compiled rows: the program kind
	Bytes  int64  `json:"bytes"`
	Runs   int64  `json:"runs"`

	VirtualUS   float64 `json:"virtual_us,omitempty"`
	VirtualMBps float64 `json:"virtual_mbps,omitempty"`

	HostNsOp float64 `json:"host_ns_op,omitempty"`
	HostMBps float64 `json:"host_mbps,omitempty"`
	AllocsOp float64 `json:"allocs_op"`
}

// compileShape is one layout in the sweep.
type compileShape struct {
	name  string
	dt    *datatype.Type
	count int
}

// compileShapes spans every program kind: contig memcpy, 1D vector, 2D
// nested vector, fixed-block indexed, the Figure 10 varied-block struct,
// and an irregular shape past the materialization cap (generic fallback).
func compileShapes() []compileShape {
	v1 := datatype.Must(datatype.TypeVector(32, 512, 1024, datatype.Int32))
	idx := datatype.Must(datatype.TypeIndexed([]int{1, 1, 1}, []int{0, 3, 7}, datatype.Int32))
	displs := make([]int, 64)
	for i := range displs {
		displs[i] = i * 64
	}
	return []compileShape{
		{"contig-256k", datatype.Must(datatype.TypeContiguous(65536, datatype.Int32)), 1},
		{"vector-1d", VectorType(512), 1},
		{"vector-2d", datatype.Must(datatype.TypeHvector(16, 1, 256<<10, v1)), 1},
		{"indexed-block", datatype.Must(datatype.TypeIndexedBlock(32, displs, datatype.Int32)), 8},
		{"struct-fig10", StructType(256), 16},
		{"irregular-big", datatype.Must(datatype.TypeVector(128, 1, 2, idx)), 200},
	}
}

// CompilerSweep runs the sweep. Sim rows are always produced; host rows only
// when measureHost is set (they cost real wall-clock time and are
// machine-dependent).
func CompilerSweep(measureHost bool) ([]CompileRow, error) {
	model := verbs.DefaultModel()
	cfg := core.DefaultConfig()
	var rows []CompileRow
	for _, sh := range compileShapes() {
		prog := datatype.Compile(sh.dt, sh.count)
		stats := datatype.LayoutStats(sh.dt, sh.count, 0)
		bytes, runs := stats.Bytes, stats.Runs
		if prog.Runs() >= 0 && prog.Runs() != runs {
			return nil, fmt.Errorf("compile sweep %s: program claims %d runs, cursor walked %d",
				sh.name, prog.Runs(), runs)
		}

		// Per-run processing charge for the compiled path: canonical
		// programs advance in O(1); generic programs replay the cursor.
		perRunCompiled := compiledPerRun
		if prog.Kind() == datatype.ProgGeneric {
			perRunCompiled = cfg.TypeProcPerRun
		}
		price := func(perRun simtime.Duration, priceRuns int64) float64 {
			return (model.CopyTime(bytes, int(priceRuns)) + cfg.TypeProcBase +
				simtime.Duration(priceRuns)*perRun).Micros()
		}
		sim := func(path string, us float64, kind string) CompileRow {
			return CompileRow{
				Family: "sim", Shape: sh.name, Path: path, Kind: kind,
				Bytes: bytes, Runs: runs,
				VirtualUS:   us,
				VirtualMBps: float64(bytes) / us,
			}
		}
		rows = append(rows,
			sim("interpreted", price(cfg.TypeProcPerRun, runs), ""),
			sim("compiled", price(perRunCompiled, runs), prog.Kind().String()),
			sim("copy", price(0, 1), ""),
		)

		if measureHost {
			hostRows, err := compileHostRows(sh, prog, bytes, runs)
			if err != nil {
				return nil, err
			}
			rows = append(rows, hostRows...)
		}
	}
	return rows, nil
}

// compileHostRows measures the real engines on the host for one shape.
func compileHostRows(sh compileShape, prog *datatype.Program, size, runs int64) ([]CompileRow, error) {
	span := sh.dt.TrueExtent() + int64(sh.count-1)*sh.dt.Extent()
	m := mem.NewMemory("compile-sweep", span+4096+size)
	raw := m.MustAlloc(span)
	base := mem.Addr(int64(raw) - sh.dt.TrueLB())
	buf := m.Bytes(raw, span)
	for i := range buf {
		buf[i] = byte(i*131 + 17)
	}
	contig := m.MustAlloc(size)

	dst := make([]byte, size)
	want := make([]byte, size)

	// Correctness first: both engines must produce identical staging bytes.
	ip := pack.NewPacker(m, base, sh.dt, sh.count)
	if n, _ := ip.PackTo(want); n != size {
		return nil, fmt.Errorf("compile sweep %s: interpreted pack short: %d of %d", sh.name, n, size)
	}
	cp := pack.NewProgramPacker(m, base, prog)
	if n, _ := cp.PackTo(dst); n != size {
		return nil, fmt.Errorf("compile sweep %s: compiled pack short: %d of %d", sh.name, n, size)
	}
	if !bytes.Equal(dst, want) {
		return nil, fmt.Errorf("compile sweep %s: compiled pack bytes differ from interpreted", sh.name)
	}

	paths := []struct {
		name string
		kind string
		op   func()
	}{
		{"interpreted", "", func() {
			p := pack.NewPacker(m, base, sh.dt, sh.count)
			p.PackTo(dst)
		}},
		{"compiled", prog.Kind().String(), func() {
			cp.Reset()
			cp.PackTo(dst)
		}},
		{"copy", "", func() {
			copy(dst, m.Bytes(contig, size))
		}},
	}
	// Interleave the paths across rounds and keep each path's best round:
	// min-of-k is robust against scheduler noise and cache-warming order
	// effects, which on a shared host otherwise dwarf the per-run deltas
	// this sweep exists to show.
	best := make([]float64, len(paths))
	for _, p := range paths {
		for i := 0; i < compileWarmup; i++ {
			p.op()
		}
	}
	for round := 0; round < compileRounds; round++ {
		for pi, p := range paths {
			start := time.Now()
			for i := 0; i < compileIters; i++ {
				p.op()
			}
			nsOp := float64(time.Since(start).Nanoseconds()) / compileIters
			if best[pi] == 0 || nsOp < best[pi] {
				best[pi] = nsOp
			}
		}
	}
	var rows []CompileRow
	for pi, path := range paths {
		rows = append(rows, CompileRow{
			Family: "host", Shape: sh.name, Path: path.name, Kind: path.kind,
			Bytes: size, Runs: runs,
			HostNsOp: best[pi],
			HostMBps: float64(size) / best[pi] * 1e3, // bytes/ns = GB/s; *1e3 = MB/s
			AllocsOp: allocsPerRun(8, path.op),
		})
	}
	return rows, nil
}

// allocsPerRun measures average heap allocations per call of f (the
// testing.AllocsPerRun technique, reimplemented so non-test code does not
// import package testing).
func allocsPerRun(runs int, f func()) float64 {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	f() // warm up so one-time lazy setup is not attributed to the steady state
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < runs; i++ {
		f()
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / float64(runs)
}

// CompileJSON renders the rows as the BENCH_compile.json document, with the
// deterministic sim rows separated from the machine-dependent host rows.
func CompileJSON(rows []CompileRow) ([]byte, error) {
	doc := struct {
		Benchmark string       `json:"benchmark"`
		Workload  string       `json:"workload"`
		Note      string       `json:"note"`
		SimRows   []CompileRow `json:"sim_rows"`
		HostRows  []CompileRow `json:"host_rows"`
	}{
		Benchmark: "datatype-compiler",
		Workload:  "pack throughput, compiled program replay vs interpreted cursor walk vs raw copy() upper bound, one shape per program kind",
		Note:      "sim_rows are deterministic modeled costs (guarded by `make compile-guard`); host_rows are wall-clock and machine-dependent",
		SimRows:   filterCompile(rows, "sim"),
		HostRows:  filterCompile(rows, "host"),
	}
	return json.MarshalIndent(doc, "", "  ")
}

func filterCompile(rows []CompileRow, family string) []CompileRow {
	out := []CompileRow{}
	for _, r := range rows {
		if r.Family == family {
			out = append(out, r)
		}
	}
	return out
}

// CompileTable renders the rows as an aligned text table.
func CompileTable(rows []CompileRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# datatype compiler: %-14s %-12s %-10s %10s %8s %12s %12s %10s %9s\n",
		"shape", "path", "kind", "bytes", "runs", "virtual us", "host ns/op", "MB/s", "allocs")
	for _, r := range rows {
		cell := func(v float64, f string) string {
			if v == 0 {
				return "-"
			}
			return fmt.Sprintf(f, v)
		}
		mbps := r.VirtualMBps
		if r.Family == "host" {
			mbps = r.HostMBps
		}
		fmt.Fprintf(&b, "%21s %-12s %-10s %10d %8d %12s %12s %10s %9.1f\n",
			r.Shape, r.Path, r.Kind, r.Bytes, r.Runs,
			cell(r.VirtualUS, "%.2f"), cell(r.HostNsOp, "%.0f"), cell(mbps, "%.1f"), r.AllocsOp)
	}
	return b.String()
}

// CompileGuard regenerates the sweep's sim rows and compares them
// byte-for-byte against the sim_rows of a committed BENCH_compile.json —
// the compiler analogue of par-guard/tune-guard.
func CompileGuard(committed []byte) error {
	var doc struct {
		SimRows json.RawMessage `json:"sim_rows"`
	}
	if err := json.Unmarshal(committed, &doc); err != nil {
		return fmt.Errorf("compile guard: bad committed document: %w", err)
	}
	rows, err := CompilerSweep(false)
	if err != nil {
		return err
	}
	fresh, err := json.Marshal(filterCompile(rows, "sim"))
	if err != nil {
		return err
	}
	var want bytes.Buffer
	if err := json.Compact(&want, doc.SimRows); err != nil {
		return fmt.Errorf("compile guard: bad sim_rows: %w", err)
	}
	if !bytes.Equal(fresh, want.Bytes()) {
		return fmt.Errorf("compile guard: sim rows drifted from committed BENCH_compile.json\ncommitted: %s\nfresh:     %s",
			want.Bytes(), fresh)
	}
	return nil
}
