package exper

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/datatype"
	"repro/internal/mpi"
)

// Sweep parameters shared across the vector experiments.
var (
	// vectorColumns are the x-axis points of Figures 2, 8, 9, 12, 13, 14.
	vectorColumns = []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048}
	// structLastInts are the x-axis points of Figure 11.
	structLastInts = []int{2048, 4096, 8192, 16384, 32768, 65536, 131072}
)

const (
	latWarmup = 2
	latIters  = 4
	bwWindow  = 100
	expMem2   = 192 << 20 // per-rank memory for 2-rank experiments
	expMem8   = 96 << 20  // per-rank memory for the 8-rank Alltoall
	a2aWarmup = 1
	a2aIters  = 2
)

// Fig2 reproduces the motivating comparison (Figure 2): vector ping-pong
// latency of Contig, Datatype (Generic), Manual, Multiple and DT+reg.
func Fig2() *Result {
	r := &Result{
		Name:        "fig2",
		Title:       "Vector datatype transfer latency, schemes of Section 3.2",
		XLabel:      "columns",
		YLabel:      "one-way latency (us)",
		SeriesOrder: []string{"Contig", "Datatype", "Manual", "Multiple", "DT+reg"},
	}
	for _, x := range vectorColumns {
		dt := VectorType(x)
		bytes := VectorBytes(x)
		point := map[string]float64{}

		// Contig: same byte count, contiguous layout, Generic config.
		genCfg := worldConfig(2, core.SchemeGeneric, expMem2, nil)
		point["Contig"] = mustSim(PingPongLatency(genCfg, ContigType(bytes), 1, latWarmup, latIters))

		// Datatype: the MPICH-derived generic datatype path.
		point["Datatype"] = mustSim(PingPongLatency(genCfg, dt, 1, latWarmup, latIters))

		// Manual: user pack/unpack around a contiguous transfer.
		point["Manual"] = mustSim(ManualLatency(genCfg, dt, 1, latWarmup, latIters))

		// Multiple: one MPI call per contiguous block.
		point["Multiple"] = mustSim(MultipleLatency(genCfg, dt, 1, latWarmup, latIters))

		// DT+reg: generic path with staging registration uncached.
		regCfg := worldConfig(2, core.SchemeGeneric, expMem2, func(c *mpi.Config) {
			c.Core.RegCache = false
		})
		point["DT+reg"] = mustSim(PingPongLatency(regCfg, dt, 1, latWarmup, latIters))

		r.Add(int64(x), point)
	}
	return r
}

var newSchemeSeries = []struct {
	name   string
	scheme core.Scheme
}{
	{"Generic", core.SchemeGeneric},
	{"BC-SPUP", core.SchemeBCSPUP},
	{"RWG-UP", core.SchemeRWGUP},
	{"Multi-W", core.SchemeMultiW},
	{"P-RRS", core.SchemePRRS}, // extension: designed but unimplemented in the paper
}

// Fig8 reproduces the latency comparison of the new schemes (Figure 8).
func Fig8() *Result {
	r := &Result{
		Name:        "fig8",
		Title:       "Vector ping-pong latency, datatype communication schemes",
		XLabel:      "columns",
		YLabel:      "one-way latency (us)",
		SeriesOrder: []string{"Generic", "BC-SPUP", "RWG-UP", "Multi-W", "P-RRS"},
		Notes:       []string{"P-RRS is this reproduction's extension (the paper designed but did not implement it)"},
	}
	for _, x := range vectorColumns {
		dt := VectorType(x)
		point := map[string]float64{}
		for _, s := range newSchemeSeries {
			cfg := worldConfig(2, s.scheme, expMem2, nil)
			point[s.name] = mustSim(PingPongLatency(cfg, dt, 1, latWarmup, latIters))
		}
		r.Add(int64(x), point)
	}
	return r
}

// Fig9 reproduces the bandwidth comparison (Figure 9).
func Fig9() *Result {
	r := &Result{
		Name:        "fig9",
		Title:       "Vector bandwidth (100-message window), datatype communication schemes",
		XLabel:      "columns",
		YLabel:      "bandwidth (MB/s)",
		SeriesOrder: []string{"Generic", "BC-SPUP", "RWG-UP", "Multi-W", "P-RRS"},
		Notes:       []string{"P-RRS is this reproduction's extension (the paper designed but did not implement it)"},
	}
	for _, x := range vectorColumns {
		dt := VectorType(x)
		point := map[string]float64{}
		for _, s := range newSchemeSeries {
			cfg := worldConfig(2, s.scheme, expMem2, nil)
			point[s.name] = mustSim(Bandwidth(cfg, dt, 1, bwWindow))
		}
		r.Add(int64(x), point)
	}
	return r
}

// Fig11 reproduces the MPI_Alltoall struct-datatype comparison (Figure 11)
// on 8 ranks.
func Fig11() *Result {
	r := &Result{
		Name:        "fig11",
		Title:       "MPI_Alltoall with the Figure 10 struct datatype, 8 processes",
		XLabel:      "last-block ints",
		YLabel:      "alltoall time (us)",
		SeriesOrder: []string{"Generic", "BC-SPUP", "RWG-UP", "Multi-W"},
	}
	for _, last := range structLastInts {
		dt := StructType(last)
		point := map[string]float64{}
		for _, s := range newSchemeSeries {
			if s.scheme == core.SchemePRRS {
				continue
			}
			cfg := worldConfig(8, s.scheme, expMem8, nil)
			point[s.name] = mustSim(AlltoallTime(cfg, dt, 1, a2aWarmup, a2aIters))
		}
		r.Add(int64(last), point)
	}
	return r
}

// Fig12 reproduces the segment-unpack ablation (Figure 12): RWG-UP
// bandwidth with and without the per-segment unpack trigger.
func Fig12() *Result {
	r := &Result{
		Name:        "fig12",
		Title:       "Effect of segment unpack on RWG-UP bandwidth",
		XLabel:      "columns",
		YLabel:      "bandwidth (MB/s)",
		SeriesOrder: []string{"segment unpack", "unpack at end"},
	}
	for _, x := range vectorColumns {
		if VectorBytes(x) < 16<<10 {
			continue // segmentation only engages above the 16 KB rule
		}
		dt := VectorType(x)
		on := worldConfig(2, core.SchemeRWGUP, expMem2, nil)
		off := worldConfig(2, core.SchemeRWGUP, expMem2, func(c *mpi.Config) {
			c.Core.SegmentUnpack = false
		})
		r.Add(int64(x), map[string]float64{
			"segment unpack": mustSim(Bandwidth(on, dt, 1, bwWindow)),
			"unpack at end":  mustSim(Bandwidth(off, dt, 1, bwWindow)),
		})
	}
	return r
}

// Fig13 reproduces the list-descriptor-post ablation (Figure 13): Multi-W
// bandwidth with list post versus one post per descriptor.
func Fig13() *Result {
	r := &Result{
		Name:        "fig13",
		Title:       "Effect of list descriptor post on Multi-W bandwidth",
		XLabel:      "columns",
		YLabel:      "bandwidth (MB/s)",
		SeriesOrder: []string{"list post", "single post"},
	}
	for _, x := range vectorColumns {
		if VectorBytes(x) < 8<<10 {
			continue // eager range: no descriptors to batch
		}
		dt := VectorType(x)
		list := worldConfig(2, core.SchemeMultiW, expMem2, nil)
		single := worldConfig(2, core.SchemeMultiW, expMem2, func(c *mpi.Config) {
			c.Core.ListPost = false
		})
		r.Add(int64(x), map[string]float64{
			"list post":   mustSim(Bandwidth(list, dt, 1, bwWindow)),
			"single post": mustSim(Bandwidth(single, dt, 1, bwWindow)),
		})
	}
	return r
}

// Fig14 reproduces the worst-case buffer usage comparison (Figure 14):
// every internal buffer is allocated, registered and deregistered on the
// fly, and user-buffer registrations never hit the pin-down cache.
func Fig14() *Result {
	r := &Result{
		Name:        "fig14",
		Title:       "Vector latency, worst case of buffer usage",
		XLabel:      "columns",
		YLabel:      "one-way latency (us)",
		SeriesOrder: []string{"Generic", "BC-SPUP", "RWG-UP", "Multi-W"},
	}
	worst := func(c *mpi.Config) {
		c.Core.RegCache = false
		c.Core.UsePools = false
	}
	for _, x := range vectorColumns {
		dt := VectorType(x)
		point := map[string]float64{}
		for _, s := range newSchemeSeries {
			if s.scheme == core.SchemePRRS {
				continue
			}
			cfg := worldConfig(2, s.scheme, expMem2, worst)
			point[s.name] = mustSim(PingPongLatency(cfg, dt, 1, latWarmup, latIters))
		}
		r.Add(int64(x), point)
	}
	return r
}

// HeadlineSummary derives the abstract's improvement factors from the
// latency, bandwidth and Alltoall results.
func HeadlineSummary(fig8, fig9, fig11 *Result) string {
	out := "Headline improvement factors over the Generic (MPICH-derived) implementation\n"
	for _, s := range []string{"BC-SPUP", "RWG-UP", "Multi-W"} {
		lat := fig8.ImprovementOf(s, "Generic", true)
		bw := fig9.ImprovementOf(s, "Generic", false)
		a2a := fig11.ImprovementOf(s, "Generic", true)
		out += fmt.Sprintf("  %-8s latency x%.2f..x%.2f (avg %.2f) | bandwidth x%.2f..x%.2f (avg %.2f) | alltoall x%.2f..x%.2f (avg %.2f)\n",
			s, lat.Min, lat.Max, lat.Avg, bw.Min, bw.Max, bw.Avg, a2a.Min, a2a.Max, a2a.Avg)
	}
	return out
}

// ContigType returns a contiguous byte type of the given size, the reference
// layout for the "Contig" comparison curves.
func ContigType(n int64) *datatype.Type {
	return datatype.Must(datatype.TypeContiguous(int(n), datatype.Byte))
}
