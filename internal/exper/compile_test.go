package exper

import "testing"

// simRowsBy indexes the sim rows of a sweep by (shape, path).
func simRowsBy(rows []CompileRow) map[[2]string]CompileRow {
	out := make(map[[2]string]CompileRow)
	for _, r := range rows {
		if r.Family == "sim" {
			out[[2]string{r.Shape, r.Path}] = r
		}
	}
	return out
}

// TestCompilerSweepDeterministic pins the guard's premise: the sim rows are
// pure cost-model arithmetic, so two sweeps must agree exactly.
func TestCompilerSweepDeterministic(t *testing.T) {
	a, err := CompilerSweep(false)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CompilerSweep(false)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("row counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("row %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestCompilerSweepOrdering checks the acceptance ordering on the modeled
// rows: compiled beats interpreted on the canonical shapes (strictly on the
// contiguous and 2D-strided ones the issue names), never beats the raw-copy
// bound, and degrades to exact parity on the generic fallback shape.
func TestCompilerSweepOrdering(t *testing.T) {
	rows, err := CompilerSweep(false)
	if err != nil {
		t.Fatal(err)
	}
	sim := simRowsBy(rows)
	get := func(shape, path string) CompileRow {
		r, ok := sim[[2]string{shape, path}]
		if !ok {
			t.Fatalf("sweep has no sim row for %s/%s", shape, path)
		}
		return r
	}

	for _, shape := range []string{"contig-256k", "vector-1d", "vector-2d", "indexed-block", "struct-fig10"} {
		ip, cp, raw := get(shape, "interpreted"), get(shape, "compiled"), get(shape, "copy")
		if !(cp.VirtualUS < ip.VirtualUS) {
			t.Errorf("%s: compiled %.2f us not under interpreted %.2f us", shape, cp.VirtualUS, ip.VirtualUS)
		}
		if cp.VirtualUS < raw.VirtualUS {
			t.Errorf("%s: compiled %.2f us beats the raw copy bound %.2f us", shape, cp.VirtualUS, raw.VirtualUS)
		}
		if cp.Runs != ip.Runs || cp.Bytes != ip.Bytes {
			t.Errorf("%s: compiled row (%d runs, %d B) disagrees with interpreted (%d runs, %d B)",
				shape, cp.Runs, cp.Bytes, ip.Runs, ip.Bytes)
		}
	}

	// The generic fallback replays the interpreted cursor, so its modeled
	// cost is identical by construction.
	ip, cp := get("irregular-big", "interpreted"), get("irregular-big", "compiled")
	if cp.VirtualUS != ip.VirtualUS {
		t.Errorf("irregular-big: generic path %.2f us, interpreted %.2f us (want parity)",
			cp.VirtualUS, ip.VirtualUS)
	}
	if cp.Kind != "generic" {
		t.Errorf("irregular-big compiled row kind = %q, want generic", cp.Kind)
	}
}

// TestCompileGuardCatchesDrift makes sure the guard actually fails when the
// committed document does not match the model.
func TestCompileGuardCatchesDrift(t *testing.T) {
	rows, err := CompilerSweep(false)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := CompileJSON(rows)
	if err != nil {
		t.Fatal(err)
	}
	if err := CompileGuard(doc); err != nil {
		t.Fatalf("guard rejected a freshly generated document: %v", err)
	}
	rows[0].VirtualUS += 1
	bad, err := CompileJSON(rows)
	if err != nil {
		t.Fatal(err)
	}
	if err := CompileGuard(bad); err == nil {
		t.Fatal("guard accepted a drifted document")
	}
}
