package trace

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"repro/internal/simtime"
)

// The Recorder is written from every rank's driver goroutine on the
// real-time backend, so concurrent Add/AddSpan/Mark calls alongside readers
// must be safe. Run with -race (mirrors stats_race_test.go).
func TestRecorderConcurrent(t *testing.T) {
	r := New()
	const writers = 8
	const perWriter = 500

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			node := string(rune('a' + w))
			for i := 0; i < perWriter; i++ {
				at := simtime.Time(i * 10)
				r.Add(node, LaneCPU, "pack", at, at+5)
				r.AddSpan(node, LaneMsg, "rndv", "data", uint64(i+1), 4096, at, at+8)
				r.Mark(node, LaneMsg, "rts", "rts", uint64(i+1), at)
			}
		}()
	}
	// Readers run while the writers hammer.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			_ = r.Events()
			_, _ = r.Span()
			_ = r.ChromeTrace()
			_ = r.Summary()
			_ = r.Len()
		}
	}()
	wg.Wait()

	if got, want := r.Len(), writers*perWriter*3; got != want {
		t.Fatalf("events = %d, want %d", got, want)
	}
	var doc []map[string]interface{}
	if err := json.Unmarshal(r.ChromeTrace(), &doc); err != nil {
		t.Fatalf("ChromeTrace not valid JSON: %v", err)
	}
	if len(doc) != writers*perWriter*3 {
		t.Fatalf("chrome events = %d, want %d", len(doc), writers*perWriter*3)
	}
}

func TestNilRecorderSpanOps(t *testing.T) {
	var r *Recorder
	r.AddSpan("n", LaneMsg, "x", "data", 1, 10, 0, 5) // must not panic
	r.Mark("n", LaneMsg, "x", "rts", 1, 0)
	r.SetPrefix("p/")
	if r.Len() != 0 {
		t.Fatal("nil recorder recorded events")
	}
	if s := r.Summary(); s != "(no events)\n" {
		t.Fatalf("nil summary = %q", s)
	}
	if string(r.ChromeTrace()) != "[]" {
		t.Fatalf("nil chrome trace = %q", r.ChromeTrace())
	}
}

func TestSpanMetadataAndPrefix(t *testing.T) {
	r := New()
	r.SetPrefix("sim/BC-SPUP/")
	r.AddSpan("rank0", LaneMsg, "rndv BC-SPUP", "data", 7, 32768, 100, 900)
	r.Mark("rank0", LaneMsg, "rts", "rts", 7, 100)
	ev := r.Events()
	if len(ev) != 2 {
		t.Fatalf("events = %d", len(ev))
	}
	if ev[0].Node != "sim/BC-SPUP/rank0" {
		t.Fatalf("prefix not applied: %q", ev[0].Node)
	}
	var doc []struct {
		Name string `json:"name"`
		Ph   string `json:"ph"`
		Pid  string `json:"pid"`
		Tid  string `json:"tid"`
		Args struct {
			Op    uint64 `json:"op"`
			Bytes int64  `json:"bytes"`
		} `json:"args"`
	}
	if err := json.Unmarshal(r.ChromeTrace(), &doc); err != nil {
		t.Fatal(err)
	}
	var sawSpan, sawMark bool
	for _, e := range doc {
		switch e.Ph {
		case "X":
			sawSpan = true
			if e.Args.Op != 7 || e.Args.Bytes != 32768 {
				t.Fatalf("span args = %+v", e.Args)
			}
		case "i":
			sawMark = true
		}
		if e.Tid != "msg" || e.Pid != "sim/BC-SPUP/rank0" {
			t.Fatalf("pid/tid = %q/%q", e.Pid, e.Tid)
		}
	}
	if !sawSpan || !sawMark {
		t.Fatalf("span=%v mark=%v", sawSpan, sawMark)
	}
}

func TestSummaryAggregates(t *testing.T) {
	r := New()
	r.Add("rank0", LaneCPU, "pack seg0", 0, 400)
	r.Add("rank0", LaneCPU, "pack seg1", 500, 900)
	r.Add("rank0", LaneTx, "xmit", 100, 1000)
	out := r.Summary()
	for _, want := range []string{"rank0", "cpu", "pack", "2 events", "tx", "xmit"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
}
