package trace

import (
	"strings"
	"testing"
)

func TestNilRecorderIsNoOp(t *testing.T) {
	var r *Recorder
	r.Add("n", LaneCPU, "x", 0, 10) // must not panic
	if got := r.Gantt(40); !strings.Contains(got, "no events") {
		t.Fatalf("nil gantt = %q", got)
	}
}

func TestAddAndSpan(t *testing.T) {
	r := New()
	r.Add("a", LaneCPU, "pack", 100, 200)
	r.Add("a", LaneTx, "wire", 150, 400)
	r.Add("b", LaneRx, "wire", 160, 410)
	r.Add("a", LaneCPU, "empty", 50, 50) // zero-length: dropped
	if len(r.Events()) != 3 {
		t.Fatalf("events = %d", len(r.Events()))
	}
	lo, hi := r.Span()
	if lo != 100 || hi != 410 {
		t.Fatalf("span = %v..%v", lo, hi)
	}
}

func TestEventsSorted(t *testing.T) {
	r := New()
	r.Add("a", LaneCPU, "late", 300, 400)
	r.Add("a", LaneCPU, "early", 0, 10)
	ev := r.Events()
	if ev[0].Name != "early" || ev[1].Name != "late" {
		t.Fatalf("events not sorted: %+v", ev)
	}
}

func TestGanttRendersLanes(t *testing.T) {
	r := New()
	r.Add("rank0", LaneCPU, "pack seg", 0, 500)
	r.Add("rank0", LaneTx, "wire", 500, 1500)
	r.Add("rank1", LaneCPU, "unpack seg", 1500, 2000)
	out := r.Gantt(40)
	for _, want := range []string{"rank0", "rank1", "cpu", "tx", "p=pack", "u=unpack", "w=wire"} {
		if !strings.Contains(out, want) {
			t.Fatalf("gantt missing %q:\n%s", want, out)
		}
	}
	// Three lane rows plus header and legend.
	if lines := strings.Count(out, "|\n"); lines != 3 {
		t.Fatalf("lane rows = %d, want 3\n%s", lines, out)
	}
}

func TestGanttOverlapMarker(t *testing.T) {
	r := New()
	r.Add("a", LaneCPU, "one", 0, 100)
	r.Add("a", LaneCPU, "two", 50, 150)
	out := r.Gantt(50)
	if !strings.Contains(out, "#") {
		t.Fatalf("overlap not marked:\n%s", out)
	}
}

func TestUtilization(t *testing.T) {
	r := New()
	r.Add("a", LaneCPU, "x", 0, 250)
	r.Add("a", LaneTx, "y", 0, 1000)
	if u := r.Utilization("a", LaneCPU); u != 0.25 {
		t.Fatalf("cpu util = %v", u)
	}
	if u := r.Utilization("a", LaneTx); u != 1.0 {
		t.Fatalf("tx util = %v", u)
	}
	if u := r.Utilization("missing", LaneRx); u != 0 {
		t.Fatalf("missing util = %v", u)
	}
}

func TestTinyIntervalStillVisible(t *testing.T) {
	r := New()
	r.Add("a", LaneCPU, "blip", 0, 1)
	r.Add("a", LaneTx, "long", 0, 1_000_000)
	out := r.Gantt(50)
	if !strings.Contains(out, "b") {
		t.Fatalf("sub-column event invisible:\n%s", out)
	}
}

func TestChromeTrace(t *testing.T) {
	r := New()
	r.Add("rank0", LaneCPU, "pack", 1000, 2000)
	r.Add("rank0", LaneTx, "wire", 2000, 5000)
	out := string(r.ChromeTrace())
	for _, want := range []string{`"pack"`, `"wire"`, `"rank0"`, `"cpu"`, `"ph":"X"`, `"ts":1`, `"dur":1`} {
		if !strings.Contains(out, want) {
			t.Fatalf("chrome trace missing %q:\n%s", want, out)
		}
	}
	var nilRec *Recorder
	if got := string(nilRec.ChromeTrace()); got != "[]" {
		t.Fatalf("nil trace = %q", got)
	}
}
