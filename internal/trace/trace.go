// Package trace records named activity intervals on the simulated nodes'
// resources (CPU, HCA transmit and receive ports) and renders them as a text
// Gantt chart. It exists to make the paper's Figure 3 — the overlap between
// packing, network communication and unpacking in BC-SPUP — directly
// observable instead of merely asserted: cmd/dtpipeline traces one message
// under the Generic and BC-SPUP schemes and prints both timelines.
package trace

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"repro/internal/simtime"
)

// Lane identifies which resource an interval occupied.
type Lane string

// The traced lanes.
const (
	LaneCPU Lane = "cpu"
	LaneTx  Lane = "tx"
	LaneRx  Lane = "rx"
)

// Event is one activity interval.
type Event struct {
	Node  string
	Lane  Lane
	Name  string
	Start simtime.Time
	End   simtime.Time
}

// Recorder accumulates events. A nil *Recorder is a valid no-op sink, so
// instrumented code needs no conditionals.
type Recorder struct {
	events []Event
}

// New returns an empty recorder.
func New() *Recorder { return &Recorder{} }

// Add records an interval. No-op on a nil recorder or an empty interval.
func (r *Recorder) Add(node string, lane Lane, name string, start, end simtime.Time) {
	if r == nil || end <= start {
		return
	}
	r.events = append(r.events, Event{Node: node, Lane: lane, Name: name, Start: start, End: end})
}

// Events returns the recorded intervals, ordered by start time.
func (r *Recorder) Events() []Event {
	out := append([]Event(nil), r.events...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// Span returns the recorded time range.
func (r *Recorder) Span() (lo, hi simtime.Time) {
	for i, e := range r.events {
		if i == 0 || e.Start < lo {
			lo = e.Start
		}
		if e.End > hi {
			hi = e.End
		}
	}
	return lo, hi
}

// laneKey orders the chart rows.
type laneKey struct {
	node string
	lane Lane
}

// Gantt renders the events as one row per (node, lane), width columns wide.
// Each interval paints its first letter; overlaps within a lane (which the
// resource model should prevent) paint '#'.
func (r *Recorder) Gantt(width int) string {
	if r == nil || len(r.events) == 0 {
		return "(no events)\n"
	}
	if width < 20 {
		width = 20
	}
	lo, hi := r.Span()
	span := float64(hi - lo)
	if span <= 0 {
		span = 1
	}
	rows := map[laneKey][]Event{}
	var keys []laneKey
	for _, e := range r.events {
		k := laneKey{e.Node, e.Lane}
		if _, ok := rows[k]; !ok {
			keys = append(keys, k)
		}
		rows[k] = append(rows[k], e)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].node != keys[j].node {
			return keys[i].node < keys[j].node
		}
		return keys[i].lane < keys[j].lane
	})

	var b strings.Builder
	fmt.Fprintf(&b, "timeline %v .. %v (each column ~ %.1fus)\n",
		lo, hi, span/float64(width)/1e3)
	for _, k := range keys {
		cells := make([]byte, width)
		for i := range cells {
			cells[i] = '.'
		}
		for _, e := range rows[k] {
			s := int(float64(e.Start-lo) / span * float64(width))
			t := int(float64(e.End-lo)/span*float64(width) + 0.999)
			if t > width {
				t = width
			}
			if s >= t {
				t = s + 1
				if t > width {
					s, t = width-1, width
				}
			}
			mark := byte('?')
			if len(e.Name) > 0 {
				mark = e.Name[0]
			}
			for i := s; i < t; i++ {
				if cells[i] != '.' {
					cells[i] = '#'
				} else {
					cells[i] = mark
				}
			}
		}
		fmt.Fprintf(&b, "%-10s %-3s |%s|\n", k.node, k.lane, cells)
	}
	// Legend: unique first letters.
	seen := map[byte]string{}
	var order []byte
	for _, e := range r.events {
		if len(e.Name) == 0 {
			continue
		}
		c := e.Name[0]
		if _, ok := seen[c]; !ok {
			seen[c] = legendName(e.Name)
			order = append(order, c)
		}
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	b.WriteString("legend:")
	for _, c := range order {
		fmt.Fprintf(&b, " %c=%s", c, seen[c])
	}
	b.WriteString("  #=overlap\n")
	return b.String()
}

func legendName(name string) string {
	if i := strings.IndexAny(name, " :"); i > 0 {
		return name[:i]
	}
	return name
}

// Utilization reports the busy fraction of a (node, lane) over the recorded
// span.
func (r *Recorder) Utilization(node string, lane Lane) float64 {
	lo, hi := r.Span()
	if hi <= lo {
		return 0
	}
	var busy simtime.Duration
	for _, e := range r.events {
		if e.Node == node && e.Lane == lane {
			busy += e.End.Sub(e.Start)
		}
	}
	return float64(busy) / float64(hi-lo)
}

// ChromeTrace renders the events in the Chrome trace-event JSON format
// (load via chrome://tracing or https://ui.perfetto.dev): one "process" per
// node, one "thread" per lane, complete events with microsecond timestamps.
func (r *Recorder) ChromeTrace() []byte {
	type ev struct {
		Name string  `json:"name"`
		Ph   string  `json:"ph"`
		Ts   float64 `json:"ts"`
		Dur  float64 `json:"dur"`
		Pid  string  `json:"pid"`
		Tid  string  `json:"tid"`
	}
	if r == nil {
		b, _ := json.Marshal([]ev{})
		return b
	}
	out := make([]ev, 0, len(r.events))
	for _, e := range r.Events() {
		out = append(out, ev{
			Name: e.Name, Ph: "X",
			Ts:  e.Start.Micros(),
			Dur: e.End.Sub(e.Start).Micros(),
			Pid: e.Node, Tid: string(e.Lane),
		})
	}
	b, err := json.Marshal(out)
	if err != nil {
		panic(err) // static struct: cannot fail
	}
	return b
}
