// Package trace is the observability subsystem: it records named activity
// intervals on the nodes' resources (CPU, HCA transmit and receive ports)
// and per-message protocol spans (RTS → CTS → per-segment pack/post/
// complete/unpack → done), and renders them as a text Gantt chart, a
// flamegraph-style busy-time summary, or Chrome trace-event JSON
// (chrome://tracing / Perfetto).
//
// It began as the instrument that makes the paper's Figure 3 — the overlap
// between packing, network communication and unpacking in BC-SPUP —
// directly observable (cmd/dtpipeline), and now also carries the
// per-message spans both backends emit under cmd/dtbench -trace.
//
// Concurrency: a Recorder may be written by many goroutines at once (the
// real-time backend records from every rank's driver goroutine), so every
// method takes an internal mutex. A nil *Recorder stays a valid no-op sink,
// so instrumented code needs no conditionals.
package trace

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/simtime"
)

// Lane identifies which resource (or logical track) an interval occupied.
type Lane string

// The traced lanes.
const (
	LaneCPU Lane = "cpu"
	LaneTx  Lane = "tx"
	LaneRx  Lane = "rx"
	// LaneMsg carries per-message protocol spans (handshake, data, segment
	// marks) rather than a physical resource.
	LaneMsg Lane = "msg"
)

// Event is one activity interval, or — when Start == End — an instant mark.
type Event struct {
	Node  string
	Lane  Lane
	Name  string
	Start simtime.Time
	End   simtime.Time

	// Span metadata, zero-valued for plain resource intervals.
	Cat   string // phase category ("rts", "cts", "handshake", "data", ...)
	Op    uint64 // message/operation id
	Bytes int64  // payload bytes the span covers
}

// blockCap is the event capacity of one storage block. Blocks are the unit
// the recorder recycles through a sync.Pool: a warm recorder that is Reset
// between runs appends events into recycled blocks without allocating, and
// the hot Add path is a bounds check plus an index store.
const blockCap = 256

// block is one fixed-capacity chunk of the recorder's event log.
type block struct {
	ev []Event
}

var blockPool = sync.Pool{
	New: func() any { return &block{ev: make([]Event, 0, blockCap)} },
}

// recycle zeroes the block (dropping string references) and returns it to
// the pool.
func (b *block) recycle() {
	for i := range b.ev {
		b.ev[i] = Event{}
	}
	b.ev = b.ev[:0]
	blockPool.Put(b)
}

// Recorder accumulates events in insertion order across pooled fixed-size
// blocks. A nil *Recorder is a valid no-op sink, so instrumented code needs
// no conditionals. All methods are safe for concurrent use.
type Recorder struct {
	mu     sync.Mutex
	prefix string
	blocks []*block
	n      int
}

// New returns an empty recorder.
func New() *Recorder { return &Recorder{} }

// SetPrefix sets a namespace prepended to every subsequently recorded
// node name ("sim/Generic/" + "rank0"). It lets one recorder absorb several
// sequential runs without process-name collisions in the exported trace.
func (r *Recorder) SetPrefix(p string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.prefix = p
	r.mu.Unlock()
}

// Add records an interval. No-op on a nil recorder or an empty interval.
func (r *Recorder) Add(node string, lane Lane, name string, start, end simtime.Time) {
	if r == nil || end <= start {
		return
	}
	r.append(Event{Node: node, Lane: lane, Name: name, Start: start, End: end})
}

// AddSpan records a per-message phase interval with metadata. No-op on a nil
// recorder or an empty interval.
func (r *Recorder) AddSpan(node string, lane Lane, name, cat string, op uint64, bytes int64, start, end simtime.Time) {
	if r == nil || end <= start {
		return
	}
	r.append(Event{Node: node, Lane: lane, Name: name, Cat: cat, Op: op, Bytes: bytes, Start: start, End: end})
}

// Mark records an instant event (Start == End), e.g. "RTS sent" or a
// segment arrival. No-op on a nil recorder.
func (r *Recorder) Mark(node string, lane Lane, name, cat string, op uint64, at simtime.Time) {
	if r == nil {
		return
	}
	r.append(Event{Node: node, Lane: lane, Name: name, Cat: cat, Op: op, Start: at, End: at})
}

func (r *Recorder) append(e Event) {
	r.mu.Lock()
	if r.prefix != "" {
		e.Node = r.prefix + e.Node
	}
	var b *block
	if k := len(r.blocks); k > 0 && len(r.blocks[k-1].ev) < blockCap {
		b = r.blocks[k-1]
	} else {
		b = blockPool.Get().(*block)
		r.blocks = append(r.blocks, b)
	}
	b.ev = append(b.ev, e)
	r.n++
	r.mu.Unlock()
}

// Reset discards every recorded event and recycles the storage blocks, so
// a long-lived recorder can absorb run after run without growing.
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	for _, b := range r.blocks {
		b.recycle()
	}
	r.blocks = r.blocks[:0]
	r.n = 0
	r.mu.Unlock()
}

// snapshot copies the events under the lock, in insertion order.
func (r *Recorder) snapshot() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, r.n)
	for _, b := range r.blocks {
		out = append(out, b.ev...)
	}
	return out
}

// Events returns the recorded intervals, ordered by start time.
func (r *Recorder) Events() []Event {
	out := r.snapshot()
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// Len reports the number of recorded events.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// Span returns the recorded time range.
func (r *Recorder) Span() (lo, hi simtime.Time) {
	for i, e := range r.snapshot() {
		if i == 0 || e.Start < lo {
			lo = e.Start
		}
		if e.End > hi {
			hi = e.End
		}
	}
	return lo, hi
}

// laneKey orders the chart rows.
type laneKey struct {
	node string
	lane Lane
}

// Gantt renders the interval events as one row per (node, lane), width
// columns wide. Each interval paints its first letter; overlaps within a
// lane (which the resource model should prevent) paint '#'. Instant marks
// are skipped — they carry no width.
func (r *Recorder) Gantt(width int) string {
	events := r.snapshot()
	var intervals []Event
	for _, e := range events {
		if e.End > e.Start {
			intervals = append(intervals, e)
		}
	}
	if len(intervals) == 0 {
		return "(no events)\n"
	}
	if width < 20 {
		width = 20
	}
	lo, hi := r.Span()
	span := float64(hi - lo)
	if span <= 0 {
		span = 1
	}
	rows := map[laneKey][]Event{}
	var keys []laneKey
	for _, e := range intervals {
		k := laneKey{e.Node, e.Lane}
		if _, ok := rows[k]; !ok {
			keys = append(keys, k)
		}
		rows[k] = append(rows[k], e)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].node != keys[j].node {
			return keys[i].node < keys[j].node
		}
		return keys[i].lane < keys[j].lane
	})

	var b strings.Builder
	fmt.Fprintf(&b, "timeline %v .. %v (each column ~ %.1fus)\n",
		lo, hi, span/float64(width)/1e3)
	for _, k := range keys {
		cells := make([]byte, width)
		for i := range cells {
			cells[i] = '.'
		}
		for _, e := range rows[k] {
			s := int(float64(e.Start-lo) / span * float64(width))
			t := int(float64(e.End-lo)/span*float64(width) + 0.999)
			if t > width {
				t = width
			}
			if s >= t {
				t = s + 1
				if t > width {
					s, t = width-1, width
				}
			}
			mark := byte('?')
			if len(e.Name) > 0 {
				mark = e.Name[0]
			}
			for i := s; i < t; i++ {
				if cells[i] != '.' {
					cells[i] = '#'
				} else {
					cells[i] = mark
				}
			}
		}
		fmt.Fprintf(&b, "%-10s %-3s |%s|\n", k.node, k.lane, cells)
	}
	// Legend: unique first letters.
	seen := map[byte]string{}
	var order []byte
	for _, e := range intervals {
		if len(e.Name) == 0 {
			continue
		}
		c := e.Name[0]
		if _, ok := seen[c]; !ok {
			seen[c] = legendName(e.Name)
			order = append(order, c)
		}
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	b.WriteString("legend:")
	for _, c := range order {
		fmt.Fprintf(&b, " %c=%s", c, seen[c])
	}
	b.WriteString("  #=overlap\n")
	return b.String()
}

func legendName(name string) string {
	if i := strings.IndexAny(name, " :"); i > 0 {
		return name[:i]
	}
	return name
}

// Utilization reports the busy fraction of a (node, lane) over the recorded
// span.
func (r *Recorder) Utilization(node string, lane Lane) float64 {
	lo, hi := r.Span()
	if hi <= lo {
		return 0
	}
	var busy simtime.Duration
	for _, e := range r.snapshot() {
		if e.Node == node && e.Lane == lane {
			busy += e.End.Sub(e.Start)
		}
	}
	return float64(busy) / float64(hi-lo)
}

// Summary renders a flamegraph-style busy-time breakdown: for every
// (node, lane) row, the total busy time per activity name, sorted by time
// descending, with the share of the whole recorded span. Instant marks are
// counted but carry no time.
func (r *Recorder) Summary() string {
	events := r.snapshot()
	if len(events) == 0 {
		return "(no events)\n"
	}
	lo, hi := r.Span()
	total := float64(hi - lo)
	if total <= 0 {
		total = 1
	}

	type actKey struct {
		row  laneKey
		name string
	}
	busy := map[actKey]simtime.Duration{}
	count := map[actKey]int{}
	var rows []laneKey
	seenRow := map[laneKey]bool{}
	for _, e := range events {
		row := laneKey{e.Node, e.Lane}
		if !seenRow[row] {
			seenRow[row] = true
			rows = append(rows, row)
		}
		k := actKey{row, legendName(e.Name)}
		busy[k] += e.End.Sub(e.Start)
		count[k]++
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].node != rows[j].node {
			return rows[i].node < rows[j].node
		}
		return rows[i].lane < rows[j].lane
	})

	var b strings.Builder
	fmt.Fprintf(&b, "busy-time summary over %v .. %v\n", lo, hi)
	for _, row := range rows {
		var acts []actKey
		for k := range busy {
			if k.row == row {
				acts = append(acts, k)
			}
		}
		sort.Slice(acts, func(i, j int) bool {
			if busy[acts[i]] != busy[acts[j]] {
				return busy[acts[i]] > busy[acts[j]]
			}
			return acts[i].name < acts[j].name
		})
		for _, k := range acts {
			fmt.Fprintf(&b, "%-16s %-4s %-12s %12.1fus %6.1f%% %6d events\n",
				row.node, row.lane, k.name,
				busy[k].Micros(), 100*float64(busy[k])/total, count[k])
		}
	}
	return b.String()
}

// chromeEvent is one entry of the Chrome trace-event JSON format.
type chromeEvent struct {
	Name  string                 `json:"name"`
	Cat   string                 `json:"cat,omitempty"`
	Ph    string                 `json:"ph"`
	Ts    float64                `json:"ts"`
	Dur   *float64               `json:"dur,omitempty"`
	Pid   string                 `json:"pid"`
	Tid   string                 `json:"tid"`
	Scope string                 `json:"s,omitempty"`
	Args  map[string]interface{} `json:"args,omitempty"`
}

// ChromeTrace renders the events in the Chrome trace-event JSON format
// (load via chrome://tracing or https://ui.perfetto.dev): one "process" per
// node, one "thread" per lane. Intervals become complete ("X") events with
// microsecond timestamps; marks become thread-scoped instant ("i") events.
// Span metadata (op id, bytes, category) is carried in args.
func (r *Recorder) ChromeTrace() []byte {
	events := r.Events()
	out := make([]chromeEvent, 0, len(events))
	for _, e := range events {
		ce := chromeEvent{
			Name: e.Name, Cat: e.Cat,
			Ts:  e.Start.Micros(),
			Pid: e.Node, Tid: string(e.Lane),
		}
		if e.End > e.Start {
			ce.Ph = "X"
			d := e.End.Sub(e.Start).Micros()
			ce.Dur = &d
		} else {
			ce.Ph = "i"
			ce.Scope = "t"
		}
		if e.Op != 0 || e.Bytes != 0 {
			ce.Args = map[string]interface{}{}
			if e.Op != 0 {
				ce.Args["op"] = e.Op
			}
			if e.Bytes != 0 {
				ce.Args["bytes"] = e.Bytes
			}
		}
		out = append(out, ce)
	}
	b, err := json.Marshal(out)
	if err != nil {
		panic(err) // static struct: cannot fail
	}
	return b
}
