// alltoallstruct runs the paper's Section 8.3 collective experiment as a
// standalone program: MPI_Alltoall over 8 ranks with the Figure 10 struct
// datatype (blocks growing exponentially from one integer, each followed by
// a one-integer gap), comparing the transfer schemes and verifying that
// every rank receives every peer's data intact.
//
//	go run ./examples/alltoallstruct -last 8192
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/datatype"
	"repro/internal/exper"
	"repro/internal/mem"
	"repro/internal/mpi"
	"repro/internal/pack"
)

func main() {
	last := flag.Int("last", 8192, "integers in the struct's last block")
	ranks := flag.Int("ranks", 8, "number of ranks")
	flag.Parse()

	st := exper.StructType(*last)
	fmt.Printf("struct datatype: %d blocks, %d data bytes over %d-byte extent (density %.2f)\n\n",
		st.Blocks(), st.Size(), st.Extent(), st.Density())

	for _, s := range []struct {
		name   string
		scheme core.Scheme
	}{
		{"Generic", core.SchemeGeneric},
		{"BC-SPUP", core.SchemeBCSPUP},
		{"RWG-UP", core.SchemeRWGUP},
		{"Multi-W", core.SchemeMultiW},
		{"Auto", core.SchemeAuto},
	} {
		us, err := run(*ranks, st, s.scheme)
		if err != nil {
			log.Fatalf("%s: %v", s.name, err)
		}
		fmt.Printf("%-8s alltoall on %d ranks: %10.1f us\n", s.name, *ranks, us)
	}
}

func run(n int, st *datatype.Type, scheme core.Scheme) (float64, error) {
	cfg := mpi.DefaultConfig()
	cfg.Ranks = n
	cfg.MemBytes = 96 << 20
	cfg.Core.Scheme = scheme

	world, err := mpi.NewWorld(cfg)
	if err != nil {
		return 0, err
	}
	var us float64
	err = world.Run(func(p *mpi.Proc) error {
		span := st.Extent() * int64(n)
		sbuf := p.Mem().MustAlloc(span)
		rbuf := p.Mem().MustAlloc(span)

		// Block destined to rank d carries bytes derived from (me, d).
		size := st.Size()
		payload := make([]byte, size)
		for d := 0; d < n; d++ {
			for i := range payload {
				payload[i] = byte(p.Rank()*31 + d*7 + i)
			}
			u := pack.NewUnpacker(p.Mem(), sbuf+mem.Addr(int64(d)*st.Extent()), st, 1)
			if k, _ := u.UnpackFrom(payload); k != size {
				return fmt.Errorf("fill short")
			}
		}

		if err := p.Barrier(); err != nil {
			return err
		}
		start := p.Now()
		if err := p.Alltoall(sbuf, 1, st, rbuf, 1, st); err != nil {
			return err
		}
		if err := p.Barrier(); err != nil {
			return err
		}
		if p.Rank() == 0 {
			us = p.Now().Sub(start).Micros()
		}

		// Verify: block from rank s must match (s, me).
		got := make([]byte, size)
		for s := 0; s < n; s++ {
			pk := pack.NewPacker(p.Mem(), rbuf+mem.Addr(int64(s)*st.Extent()), st, 1)
			if k, _ := pk.PackTo(got); k != size {
				return fmt.Errorf("read short")
			}
			for i := range got {
				want := byte(s*31 + p.Rank()*7 + i)
				if got[i] != want {
					return fmt.Errorf("rank %d: block from %d corrupt at %d", p.Rank(), s, i)
				}
			}
		}
		return nil
	})
	return us, err
}
