// pario demonstrates the noncontiguous parallel-I/O subsystem: three client
// ranks check-point strided views of their local state into one server-hosted
// file and restore them, comparing the pack-based and RDMA gather/scatter
// paths — the storage application the paper's conclusion points at.
//
//	go run ./examples/pario -columns 512
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/datatype"
	"repro/internal/exper"
	"repro/internal/mem"
	"repro/internal/mpi"
	"repro/internal/pack"
	"repro/internal/pario"
	"repro/internal/simtime"
)

func main() {
	columns := flag.Int("columns", 512, "vector columns per client view")
	flag.Parse()
	dt := exper.VectorType(*columns)
	fmt.Printf("each client checkpoints %d KB across %d strided blocks\n\n",
		dt.Size()/1024, dt.Blocks())
	for _, mode := range []pario.Mode{pario.ModePack, pario.ModeRDMA} {
		us, err := run(dt, mode)
		if err != nil {
			log.Fatalf("%v: %v", mode, err)
		}
		fmt.Printf("%-5v checkpoint+restore, 3 clients: %10.1f us\n", mode, us)
	}
}

func run(dt *datatype.Type, mode pario.Mode) (float64, error) {
	cfg := mpi.DefaultConfig()
	cfg.Ranks = 4
	cfg.MemBytes = 128 << 20
	cfg.Core.Scheme = core.SchemeBCSPUP
	world, err := mpi.NewWorld(cfg)
	if err != nil {
		return 0, err
	}
	const server = 0
	var us simtime.Duration
	err = world.Run(func(p *mpi.Proc) error {
		fileSize := dt.Size()*int64(p.Size()) + 4096
		f, err := pario.Open(p.World(), server, fileSize, mode)
		if err != nil {
			return err
		}
		if p.Rank() == server {
			return f.Serve()
		}
		span := dt.TrueExtent()
		state := p.Mem().MustAlloc(span)
		// Fill the strided view with recognizable state.
		payload := make([]byte, dt.Size())
		for i := range payload {
			payload[i] = byte(p.Rank()*37 + i)
		}
		u := pack.NewUnpacker(p.Mem(), state, dt, 1)
		u.UnpackFrom(payload)

		off := int64(p.Rank()-1) * dt.Size()
		start := p.Now()
		if err := f.WriteAt(off, state, 1, dt); err != nil {
			return err
		}
		// Clobber local state, then restore from the checkpoint.
		clob := p.Mem().Bytes(mem.Addr(int64(state)+dt.TrueLB()), span)
		for i := range clob {
			clob[i] = 0
		}
		if err := f.ReadAt(off, state, 1, dt); err != nil {
			return err
		}
		if p.Rank() == 1 {
			us = p.Now().Sub(start)
		}
		// Verify restoration.
		got := make([]byte, dt.Size())
		pk := pack.NewPacker(p.Mem(), state, dt, 1)
		pk.PackTo(got)
		for i := range got {
			if got[i] != byte(p.Rank()*37+i) {
				return fmt.Errorf("rank %d: restore corrupt at byte %d", p.Rank(), i)
			}
		}
		return f.Close()
	})
	return us.Micros(), err
}
