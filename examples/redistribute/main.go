// redistribute converts a row-block distributed matrix into a column-block
// distribution with a single MPI_Alltoall over derived datatypes — the dense
// linear-algebra redistribution pattern (and the communication core of a
// parallel FFT transpose).
//
// Each of P ranks starts with N/P full rows. The block destined for rank j
// is described *in place* by a resized vector datatype (N/P rows of N/P
// columns with a full-row stride, extent shrunk to one column block so
// Alltoall's block indexing walks across columns); the received blocks are
// contiguous. No manual packing anywhere.
//
//	go run ./examples/redistribute -n 512 -ranks 8
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"log"
	"math"

	"repro/internal/core"
	"repro/internal/datatype"
	"repro/internal/mem"
	"repro/internal/mpi"
)

func main() {
	n := flag.Int("n", 512, "global matrix edge (divisible by ranks)")
	ranks := flag.Int("ranks", 8, "number of ranks")
	flag.Parse()
	if *n%*ranks != 0 {
		log.Fatalf("n=%d not divisible by ranks=%d", *n, *ranks)
	}

	for _, s := range []struct {
		name   string
		scheme core.Scheme
	}{
		{"Generic", core.SchemeGeneric},
		{"BC-SPUP", core.SchemeBCSPUP},
		{"Multi-W", core.SchemeMultiW},
		{"Auto", core.SchemeAuto},
	} {
		us, err := run(*n, *ranks, s.scheme)
		if err != nil {
			log.Fatalf("%s: %v", s.name, err)
		}
		fmt.Printf("%-8s redistribute %dx%d float64 over %d ranks: %10.1f us\n",
			s.name, *n, *n, *ranks, us)
	}
}

func run(n, ranks int, scheme core.Scheme) (float64, error) {
	cfg := mpi.DefaultConfig()
	cfg.Ranks = ranks
	cfg.MemBytes = 96 << 20
	cfg.Core.Scheme = scheme
	world, err := mpi.NewWorld(cfg)
	if err != nil {
		return 0, err
	}

	per := n / ranks // rows (and columns) per rank
	// Send side: one N/P x N/P block, rows strided by the full row length,
	// extent shrunk to one column block so block i starts i*per columns in.
	blockVec := datatype.Must(datatype.TypeVector(per, per, n, datatype.Float64))
	sendType := datatype.Must(datatype.TypeResized(blockVec, 0, int64(per)*8))
	// Receive side: each peer's block lands contiguously.
	recvType := datatype.Must(datatype.TypeContiguous(per*per, datatype.Float64))

	var us float64
	err = world.Run(func(p *mpi.Proc) error {
		me := p.Rank()
		rowBytes := int64(n) * 8
		local := p.Mem().MustAlloc(int64(per) * rowBytes) // per rows x n cols
		// Global element value: M[r][c] = r*n + c.
		for r := 0; r < per; r++ {
			row := p.Mem().Bytes(local+mem.Addr(int64(r)*rowBytes), rowBytes)
			for c := 0; c < n; c++ {
				gr := me*per + r
				binary.LittleEndian.PutUint64(row[c*8:], math.Float64bits(float64(gr*n+c)))
			}
		}
		out := p.Mem().MustAlloc(int64(n) * int64(per) * 8) // n rows x per cols

		if err := p.Barrier(); err != nil {
			return err
		}
		start := p.Now()
		if err := p.Alltoall(local, 1, sendType, out, 1, recvType); err != nil {
			return err
		}
		if err := p.Barrier(); err != nil {
			return err
		}
		if me == 0 {
			us = p.Now().Sub(start).Micros()
		}

		// Verify: out holds, for each source i, its per x per block of my
		// columns; global row = i*per + r, global col = me*per + c.
		for i := 0; i < ranks; i++ {
			base := out + mem.Addr(int64(i)*int64(per*per)*8)
			for r := 0; r < per; r++ {
				for c := 0; c < per; c++ {
					off := mem.Addr((r*per + c) * 8)
					v := math.Float64frombits(binary.LittleEndian.Uint64(p.Mem().Bytes(base+off, 8)))
					want := float64((i*per+r)*n + me*per + c)
					if v != want {
						return fmt.Errorf("rank %d: block %d elem (%d,%d) = %v, want %v",
							me, i, r, c, v, want)
					}
				}
			}
		}
		return nil
	})
	return us, err
}
