// haloexchange runs a 2-D domain-decomposition ghost-cell exchange — the
// classic consumer of derived datatypes the paper's introduction motivates
// (multi-dimensional decomposition, finite-element codes).
//
// Each rank owns an interior tile of a global float64 grid plus a one-cell
// halo. North/south halo rows are contiguous; east/west halo columns are
// vector datatypes with a stride of one local row. The exchange is verified
// against the neighbours' known cell values and timed per transfer scheme.
//
//	go run ./examples/haloexchange -px 2 -py 2 -tile 256 -steps 4
package main

import (
	"flag"
	"fmt"
	"log"
	"math"

	"repro/internal/core"
	"repro/internal/datatype"
	"repro/internal/mem"
	"repro/internal/mpi"
	"repro/internal/simtime"
)

func main() {
	px := flag.Int("px", 2, "process grid width")
	py := flag.Int("py", 2, "process grid height")
	tile := flag.Int("tile", 256, "interior tile edge (cells)")
	steps := flag.Int("steps", 4, "exchange steps")
	flag.Parse()

	for _, s := range []struct {
		name   string
		scheme core.Scheme
	}{
		{"Generic", core.SchemeGeneric},
		{"BC-SPUP", core.SchemeBCSPUP},
		{"Multi-W", core.SchemeMultiW},
		{"Auto", core.SchemeAuto},
	} {
		el, err := run(*px, *py, *tile, *steps, s.scheme)
		if err != nil {
			log.Fatalf("%s: %v", s.name, err)
		}
		fmt.Printf("%-8s %d x %d ranks, %d^2 tile, %d steps: %10.1f us/step\n",
			s.name, *px, *py, *tile, *steps, el.Micros()/float64(*steps))
	}
}

func run(px, py, tile, steps int, scheme core.Scheme) (simtime.Duration, error) {
	cfg := mpi.DefaultConfig()
	cfg.Ranks = px * py
	cfg.MemBytes = 64 << 20
	cfg.Core.Scheme = scheme

	world, err := mpi.NewWorld(cfg)
	if err != nil {
		return 0, err
	}

	// Local grid: (tile+2) x (tile+2) float64, row-major, with a halo ring.
	w := tile + 2
	rowBytes := int64(w) * 8

	// Column halo: tile elements, one per local row.
	colType := datatype.Must(datatype.TypeVector(tile, 1, w, datatype.Float64))
	// Row halo: tile contiguous elements.
	rowType := datatype.Must(datatype.TypeContiguous(tile, datatype.Float64))

	var elapsed simtime.Duration
	err = world.Run(func(p *mpi.Proc) error {
		rank := p.Rank()
		gx, gy := rank%px, rank/px
		grid := p.Mem().MustAlloc(int64(w) * rowBytes)
		at := func(r, c int) mem.Addr { return grid + mem.Addr(int64(r)*rowBytes+int64(c)*8) }

		// Every interior cell holds the owner's rank (as a float64 pattern).
		val := float64(rank + 1)
		for r := 1; r <= tile; r++ {
			row := p.Mem().Bytes(at(r, 1), int64(tile)*8)
			for c := 0; c < tile; c++ {
				putF64(row[c*8:], val)
			}
		}

		nbr := func(dx, dy int) int {
			nx, ny := gx+dx, gy+dy
			if nx < 0 || nx >= px || ny < 0 || ny >= py {
				return -1
			}
			return ny*px + nx
		}
		west, east := nbr(-1, 0), nbr(1, 0)
		north, south := nbr(0, -1), nbr(0, 1)

		if err := p.Barrier(); err != nil {
			return err
		}
		start := p.Now()
		for step := 0; step < steps; step++ {
			var reqs []*core.Request
			post := func(req *core.Request) { reqs = append(reqs, req) }
			// Receive halos.
			if west >= 0 {
				post(p.Irecv(at(1, 0), 1, colType, west, 0))
			}
			if east >= 0 {
				post(p.Irecv(at(1, tile+1), 1, colType, east, 0))
			}
			if north >= 0 {
				post(p.Irecv(at(0, 1), 1, rowType, north, 1))
			}
			if south >= 0 {
				post(p.Irecv(at(tile+1, 1), 1, rowType, south, 1))
			}
			// Send boundary cells.
			if west >= 0 {
				post(p.Isend(at(1, 1), 1, colType, west, 0))
			}
			if east >= 0 {
				post(p.Isend(at(1, tile), 1, colType, east, 0))
			}
			if north >= 0 {
				post(p.Isend(at(1, 1), 1, rowType, north, 1))
			}
			if south >= 0 {
				post(p.Isend(at(tile, 1), 1, rowType, south, 1))
			}
			if err := p.Wait(reqs...); err != nil {
				return err
			}
		}
		if err := p.Barrier(); err != nil {
			return err
		}
		if rank == 0 {
			elapsed = p.Now().Sub(start)
		}

		// Verify the halos carry the neighbours' values.
		check := func(r, c, owner int) error {
			if owner < 0 {
				return nil
			}
			got := getF64(p.Mem().Bytes(at(r, c), 8))
			want := float64(owner + 1)
			if got != want {
				return fmt.Errorf("rank %d halo (%d,%d): got %v want %v", rank, r, c, got, want)
			}
			return nil
		}
		mid := tile/2 + 1
		for _, chk := range []error{
			check(mid, 0, west), check(mid, tile+1, east),
			check(0, mid, north), check(tile+1, mid, south),
		} {
			if chk != nil {
				return chk
			}
		}
		return nil
	})
	return elapsed, err
}

func putF64(b []byte, v float64) {
	u := math.Float64bits(v)
	for i := 0; i < 8; i++ {
		b[i] = byte(u >> (8 * i))
	}
}

func getF64(b []byte) float64 {
	var u uint64
	for i := 0; i < 8; i++ {
		u |= uint64(b[i]) << (8 * i)
	}
	return math.Float64frombits(u)
}
