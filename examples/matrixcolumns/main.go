// matrixcolumns reproduces the paper's Section 3.2 motivating example as a
// runnable program: transferring x columns of a 128x4096 integer matrix
// between two ranks, comparing every way an application could do it —
// a derived datatype under each transfer scheme, manual pack/unpack, and
// one MPI call per block.
//
//	go run ./examples/matrixcolumns -columns 64
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/exper"
	"repro/internal/mpi"
)

func main() {
	columns := flag.Int("columns", 64, "number of matrix columns to transfer (1..2048)")
	flag.Parse()
	x := *columns
	if x < 1 || x > 2048 {
		log.Fatalf("columns must be in 1..2048, got %d", x)
	}

	dt := exper.VectorType(x)
	fmt.Printf("transferring %d columns = %d KB of noncontiguous data (%d blocks of %d bytes)\n\n",
		x, exper.VectorBytes(x)/1024, dt.Blocks(), 4*x)

	base := mpi.DefaultConfig()
	base.Ranks = 2
	base.MemBytes = 192 << 20

	type row struct {
		name string
		us   float64
	}
	var rows []row

	for _, s := range []struct {
		name   string
		scheme core.Scheme
	}{
		{"Datatype/Generic (MPICH path)", core.SchemeGeneric},
		{"Datatype/BC-SPUP", core.SchemeBCSPUP},
		{"Datatype/RWG-UP", core.SchemeRWGUP},
		{"Datatype/Multi-W", core.SchemeMultiW},
		{"Datatype/Auto", core.SchemeAuto},
	} {
		cfg := base
		cfg.Core.Scheme = s.scheme
		us, err := exper.PingPongLatency(cfg, dt, 1, 2, 4)
		if err != nil {
			log.Fatal(err)
		}
		rows = append(rows, row{s.name, us})
	}

	cfg := base
	cfg.Core.Scheme = core.SchemeGeneric
	manual, err := exper.ManualLatency(cfg, dt, 1, 2, 4)
	if err != nil {
		log.Fatal(err)
	}
	rows = append(rows, row{"Manual pack/unpack", manual})

	multiple, err := exper.MultipleLatency(cfg, dt, 1, 2, 4)
	if err != nil {
		log.Fatal(err)
	}
	rows = append(rows, row{"Multiple sends (one per block)", multiple})

	contig, err := exper.PingPongLatency(cfg, exper.ContigType(exper.VectorBytes(x)), 1, 2, 4)
	if err != nil {
		log.Fatal(err)
	}
	rows = append(rows, row{"Contiguous reference", contig})

	best := rows[0].us
	for _, r := range rows {
		if r.us < best {
			best = r.us
		}
	}
	fmt.Printf("%-34s %12s %8s\n", "strategy", "latency(us)", "vs best")
	for _, r := range rows {
		fmt.Printf("%-34s %12.1f %7.2fx\n", r.name, r.us, r.us/best)
	}
}
