// Quickstart: two simulated ranks exchange a column-slice of a matrix using
// an MPI derived datatype over the simulated InfiniBand fabric.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/datatype"
	"repro/internal/mem"
	"repro/internal/mpi"
)

func main() {
	// A cluster of two ranks with the BC-SPUP transfer scheme.
	cfg := mpi.DefaultConfig()
	cfg.Ranks = 2
	cfg.Core.Scheme = core.SchemeBCSPUP

	world, err := mpi.NewWorld(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Four columns of a 128x4096 int32 matrix: the paper's motivating type.
	const (
		rows, cols, pick = 128, 4096, 4
	)
	colType := datatype.Must(datatype.TypeVector(rows, pick, cols, datatype.Int32))
	fmt.Printf("datatype: %v (%d bytes of data, %d blocks)\n",
		colType, colType.Size(), colType.Blocks())

	err = world.Run(func(p *mpi.Proc) error {
		matrix := p.Mem().MustAlloc(rows * cols * 4)
		if p.Rank() == 0 {
			// Fill the picked columns with recognizable values.
			for r := 0; r < rows; r++ {
				row := p.Mem().Bytes(matrix+mem.Addr(r*cols*4), int64(pick)*4)
				for c := 0; c < pick; c++ {
					v := uint32(r*10 + c)
					row[c*4+0] = byte(v)
					row[c*4+1] = byte(v >> 8)
					row[c*4+2] = byte(v >> 16)
					row[c*4+3] = byte(v >> 24)
				}
			}
			start := p.Now()
			if err := p.Send(matrix, 1, colType, 1, 0); err != nil {
				return err
			}
			fmt.Printf("rank 0: sent %d noncontiguous bytes in %v (virtual time)\n",
				colType.Size(), p.Now().Sub(start))
			return nil
		}
		req, err := p.Recv(matrix, 1, colType, 0, 0)
		if err != nil {
			return err
		}
		// Spot-check a value: row 3, column 2 -> 32.
		got := p.Mem().Bytes(matrix+mem.Addr(3*cols*4+2*4), 4)
		v := uint32(got[0]) | uint32(got[1])<<8 | uint32(got[2])<<16 | uint32(got[3])<<24
		fmt.Printf("rank 1: received %d bytes from rank %d; matrix[3][2] = %d (want 32)\n",
			req.Bytes, req.Source, v)
		if v != 32 {
			return fmt.Errorf("verification failed: got %d", v)
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("ok")
}
