// Benchmarks regenerating the paper's evaluation, one per table/figure.
//
// Each benchmark runs the figure's workload at a representative sweep point
// and reports the *virtual-time* metric the paper plots as a custom unit
// (vus/op = virtual microseconds per operation, vMB/s = virtual bandwidth).
// The wall-clock ns/op merely measures the simulator. The full sweeps behind
// every figure are produced by cmd/dtbench.
package repro

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/datatype"
	"repro/internal/exper"
	"repro/internal/ib"
	"repro/internal/mem"
	"repro/internal/mpi"
	"repro/internal/pack"
	"repro/internal/pario"
	"repro/internal/simtime"
)

const benchMem = 192 << 20

func benchCfg(ranks int, scheme core.Scheme, mut func(*mpi.Config)) mpi.Config {
	cfg := mpi.DefaultConfig()
	cfg.Ranks = ranks
	cfg.MemBytes = benchMem
	cfg.Core.Scheme = scheme
	if mut != nil {
		mut(&cfg)
	}
	return cfg
}

func reportLatency(b *testing.B, run func() (float64, error)) {
	b.Helper()
	var last float64
	for i := 0; i < b.N; i++ {
		v, err := run()
		if err != nil {
			b.Fatal(err)
		}
		last = v
	}
	b.ReportMetric(last, "vus/op")
}

func reportBandwidth(b *testing.B, run func() (float64, error)) {
	b.Helper()
	var last float64
	for i := 0; i < b.N; i++ {
		v, err := run()
		if err != nil {
			b.Fatal(err)
		}
		last = v
	}
	b.ReportMetric(last, "vMB/s")
}

// BenchmarkFig2Motivating: the Section 3.2 comparison at 512 columns.
func BenchmarkFig2Motivating(b *testing.B) {
	dt := exper.VectorType(512)
	gen := benchCfg(2, core.SchemeGeneric, nil)
	b.Run("Contig", func(b *testing.B) {
		ct := exper.ContigType(exper.VectorBytes(512))
		reportLatency(b, func() (float64, error) { return exper.PingPongLatency(gen, ct, 1, 2, 4) })
	})
	b.Run("Datatype", func(b *testing.B) {
		reportLatency(b, func() (float64, error) { return exper.PingPongLatency(gen, dt, 1, 2, 4) })
	})
	b.Run("Manual", func(b *testing.B) {
		reportLatency(b, func() (float64, error) { return exper.ManualLatency(gen, dt, 1, 2, 4) })
	})
	b.Run("Multiple", func(b *testing.B) {
		reportLatency(b, func() (float64, error) { return exper.MultipleLatency(gen, dt, 1, 2, 4) })
	})
	b.Run("DT+reg", func(b *testing.B) {
		cfg := benchCfg(2, core.SchemeGeneric, func(c *mpi.Config) { c.Core.RegCache = false })
		reportLatency(b, func() (float64, error) { return exper.PingPongLatency(cfg, dt, 1, 2, 4) })
	})
}

var benchSchemes = []struct {
	name   string
	scheme core.Scheme
}{
	{"Generic", core.SchemeGeneric},
	{"BC-SPUP", core.SchemeBCSPUP},
	{"RWG-UP", core.SchemeRWGUP},
	{"Multi-W", core.SchemeMultiW},
	{"P-RRS", core.SchemePRRS},
}

// BenchmarkFig8Latency: scheme latency at 512 columns (256 KB vector).
func BenchmarkFig8Latency(b *testing.B) {
	dt := exper.VectorType(512)
	for _, s := range benchSchemes {
		cfg := benchCfg(2, s.scheme, nil)
		b.Run(s.name, func(b *testing.B) {
			reportLatency(b, func() (float64, error) { return exper.PingPongLatency(cfg, dt, 1, 2, 4) })
		})
	}
}

// BenchmarkFig9Bandwidth: scheme bandwidth at 512 columns.
func BenchmarkFig9Bandwidth(b *testing.B) {
	dt := exper.VectorType(512)
	for _, s := range benchSchemes {
		cfg := benchCfg(2, s.scheme, nil)
		b.Run(s.name, func(b *testing.B) {
			reportBandwidth(b, func() (float64, error) { return exper.Bandwidth(cfg, dt, 1, 100) })
		})
	}
}

// BenchmarkFig11Alltoall: the 8-rank struct Alltoall, last block 16 Ki ints.
func BenchmarkFig11Alltoall(b *testing.B) {
	dt := exper.StructType(16384)
	for _, s := range benchSchemes {
		if s.scheme == core.SchemePRRS {
			continue
		}
		cfg := benchCfg(8, s.scheme, func(c *mpi.Config) { c.MemBytes = 96 << 20 })
		b.Run(s.name, func(b *testing.B) {
			reportLatency(b, func() (float64, error) { return exper.AlltoallTime(cfg, dt, 1, 1, 2) })
		})
	}
}

// BenchmarkFig12SegmentUnpack: RWG-UP bandwidth with/without segment unpack.
func BenchmarkFig12SegmentUnpack(b *testing.B) {
	dt := exper.VectorType(1024)
	b.Run("segment-unpack", func(b *testing.B) {
		cfg := benchCfg(2, core.SchemeRWGUP, nil)
		reportBandwidth(b, func() (float64, error) { return exper.Bandwidth(cfg, dt, 1, 100) })
	})
	b.Run("unpack-at-end", func(b *testing.B) {
		cfg := benchCfg(2, core.SchemeRWGUP, func(c *mpi.Config) { c.Core.SegmentUnpack = false })
		reportBandwidth(b, func() (float64, error) { return exper.Bandwidth(cfg, dt, 1, 100) })
	})
}

// BenchmarkFig13ListPost: Multi-W bandwidth with list vs single posts.
func BenchmarkFig13ListPost(b *testing.B) {
	dt := exper.VectorType(64) // small blocks: posting dominates
	b.Run("list-post", func(b *testing.B) {
		cfg := benchCfg(2, core.SchemeMultiW, nil)
		reportBandwidth(b, func() (float64, error) { return exper.Bandwidth(cfg, dt, 1, 100) })
	})
	b.Run("single-post", func(b *testing.B) {
		cfg := benchCfg(2, core.SchemeMultiW, func(c *mpi.Config) { c.Core.ListPost = false })
		reportBandwidth(b, func() (float64, error) { return exper.Bandwidth(cfg, dt, 1, 100) })
	})
}

// BenchmarkFig14WorstCase: latency with no pools and no pin-down cache.
func BenchmarkFig14WorstCase(b *testing.B) {
	dt := exper.VectorType(512)
	for _, s := range benchSchemes {
		if s.scheme == core.SchemePRRS {
			continue
		}
		cfg := benchCfg(2, s.scheme, func(c *mpi.Config) {
			c.Core.RegCache = false
			c.Core.UsePools = false
		})
		b.Run(s.name, func(b *testing.B) {
			reportLatency(b, func() (float64, error) { return exper.PingPongLatency(cfg, dt, 1, 2, 4) })
		})
	}
}

// BenchmarkAblationSegmentSize: BC-SPUP sensitivity to segment size.
func BenchmarkAblationSegmentSize(b *testing.B) {
	dt := exper.VectorType(2048)
	for _, segKB := range []int64{32, 128, 512} {
		cfg := benchCfg(2, core.SchemeBCSPUP, func(c *mpi.Config) { c.Core.SegmentSize = segKB << 10 })
		b.Run(formatKB(segKB), func(b *testing.B) {
			reportLatency(b, func() (float64, error) { return exper.PingPongLatency(cfg, dt, 1, 2, 4) })
		})
	}
}

func formatKB(kb int64) string {
	return fmt.Sprintf("%dKB", kb)
}

// BenchmarkAblationEagerPath: the Section 7.1 small-message improvement.
func BenchmarkAblationEagerPath(b *testing.B) {
	dt := exper.VectorType(8) // 4 KB: eager
	b.Run("generic-4copy", func(b *testing.B) {
		cfg := benchCfg(2, core.SchemeGeneric, nil)
		reportLatency(b, func() (float64, error) { return exper.PingPongLatency(cfg, dt, 1, 2, 4) })
	})
	b.Run("direct-2copy", func(b *testing.B) {
		cfg := benchCfg(2, core.SchemeBCSPUP, nil)
		reportLatency(b, func() (float64, error) { return exper.PingPongLatency(cfg, dt, 1, 2, 4) })
	})
}

// BenchmarkDatatypeEngine: raw (real-time) speed of the datatype machinery —
// cursor traversal and pack — independent of the simulation.
func BenchmarkDatatypeEngine(b *testing.B) {
	dt := exper.VectorType(512)
	m := mem.NewMemory("bench", 64<<20)
	base := m.MustAlloc(dt.TrueExtent())
	dst := make([]byte, dt.Size())
	b.Run("pack256KB", func(b *testing.B) {
		b.SetBytes(dt.Size())
		for i := 0; i < b.N; i++ {
			p := pack.NewPacker(m, base, dt, 1)
			if n, _ := p.PackTo(dst); n != dt.Size() {
				b.Fatal("short pack")
			}
		}
	})
	b.Run("flatten", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if blocks, _ := datatype.Flatten(dt, 1, 0); len(blocks) != 128 {
				b.Fatal("bad flatten")
			}
		}
	})
	b.Run("codec", func(b *testing.B) {
		enc := datatype.Encode(dt)
		for i := 0; i < b.N; i++ {
			if _, err := datatype.Decode(enc); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFabricRaw: verb-level simulated RDMA write latency (the "Contig"
// reference the figures are normalized against).
func BenchmarkFabricRaw(b *testing.B) {
	for _, kb := range []int64{4, 64, 1024} {
		size := kb << 10
		b.Run(formatKB(kb)+"write", func(b *testing.B) {
			var last float64
			for i := 0; i < b.N; i++ {
				eng := simEngine()
				fab := ib.NewFabric(eng, ib.DefaultModel())
				ma := mem.NewMemory("a", 8<<20+2*size)
				mb := mem.NewMemory("b", 8<<20+2*size)
				ha := fab.AddHCA("a", ma, nil)
				hb := fab.AddHCA("b", mb, nil)
				sendCQ, recvCQ := ib.NewCQ(ha), ib.NewCQ(ha)
				bs, br := ib.NewCQ(hb), ib.NewCQ(hb)
				qa, _ := ib.Connect(ha, hb, sendCQ, recvCQ, bs, br)
				src := ma.MustAlloc(size)
				dstA := mb.MustAlloc(size)
				rs, _ := ma.Reg().Register(src, size)
				rd, _ := mb.Reg().Register(dstA, size)
				var done float64
				sendCQ.SetHandler(func(e ib.CQE) { done = float64(eng.Now()) / 1e3 })
				if err := qa.PostSend(ib.SendWR{Op: ib.OpRDMAWrite,
					SGL:        []ib.SGE{{Addr: src, Len: size, Key: rs.LKey}},
					RemoteAddr: dstA, RKey: rd.RKey}); err != nil {
					b.Fatal(err)
				}
				if err := eng.Run(); err != nil {
					b.Fatal(err)
				}
				last = done
			}
			b.ReportMetric(last, "vus/op")
		})
	}
}

func simEngine() *simtime.Engine { return simtime.NewEngine() }

// BenchmarkOneSidedPut: the RMA extension — Put vs the equivalent Multi-W
// send (BenchmarkFig8Latency/Multi-W) isolates the rendezvous handshake.
func BenchmarkOneSidedPut(b *testing.B) {
	dt := exper.VectorType(512)
	cfg := benchCfg(2, core.SchemeMultiW, nil)
	reportLatency(b, func() (float64, error) { return exper.PutLatency(cfg, dt, 2, 4) })
}

// BenchmarkParIO: noncontiguous file I/O, pack-based vs RDMA gather/scatter.
func BenchmarkParIO(b *testing.B) {
	dt := exper.VectorType(512)
	for _, mode := range []pario.Mode{pario.ModePack, pario.ModeRDMA} {
		cfg := benchCfg(2, core.SchemeBCSPUP, nil)
		b.Run(mode.String(), func(b *testing.B) {
			reportLatency(b, func() (float64, error) { return exper.ParIOTime(cfg, dt, mode, 2, 4) })
		})
	}
}
